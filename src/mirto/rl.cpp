#include "mirto/rl.hpp"

#include <algorithm>

namespace myrtus::mirto {

QLearner::QLearner(std::size_t states, std::size_t actions, double alpha,
                   double gamma, double epsilon)
    : states_(states),
      actions_(actions),
      alpha_(alpha),
      gamma_(gamma),
      epsilon_(epsilon),
      q_(states * actions, 0.0) {}

std::size_t QLearner::ChooseAction(std::size_t state, util::Rng& rng) const {
  if (rng.NextBool(epsilon_)) return rng.NextBounded(actions_);
  return BestAction(state);
}

std::size_t QLearner::BestAction(std::size_t state) const {
  std::size_t best = 0;
  double best_q = Q(state, 0);
  for (std::size_t a = 1; a < actions_; ++a) {
    if (Q(state, a) > best_q) {
      best_q = Q(state, a);
      best = a;
    }
  }
  return best;
}

double QLearner::Q(std::size_t state, std::size_t action) const {
  return q_[state * actions_ + action];
}

void QLearner::Update(std::size_t state, std::size_t action, double reward,
                      std::size_t next_state) {
  double max_next = Q(next_state, 0);
  for (std::size_t a = 1; a < actions_; ++a) {
    max_next = std::max(max_next, Q(next_state, a));
  }
  double& cell = q_[state * actions_ + action];
  cell += alpha_ * (reward + gamma_ * max_next - cell);
}

void QLearner::UpdateTerminal(std::size_t state, std::size_t action,
                              double reward) {
  double& cell = q_[state * actions_ + action];
  cell += alpha_ * (reward - cell);
}

RlOffloadSelector::RlOffloadSelector(std::uint64_t seed)
    : learner_(kCongestionBuckets * kCongestionBuckets, kActions, 0.25, 0.0,
               0.15),
      rng_(seed, "rl-offload") {}

std::size_t RlOffloadSelector::EncodeState(double own_congestion,
                                           double uplink_congestion) {
  const auto bucket = [](double v) {
    return static_cast<std::size_t>(
        std::clamp(v, 0.0, 0.999) * kCongestionBuckets);
  };
  return bucket(own_congestion) * kCongestionBuckets + bucket(uplink_congestion);
}

std::size_t RlOffloadSelector::ChooseTarget(double own_congestion,
                                            double uplink_congestion,
                                            bool explore) {
  const std::size_t state = EncodeState(own_congestion, uplink_congestion);
  return explore ? learner_.ChooseAction(state, rng_)
                 : learner_.BestAction(state);
}

void RlOffloadSelector::Reward(double own_congestion, double uplink_congestion,
                               std::size_t action, double latency_ms) {
  const std::size_t state = EncodeState(own_congestion, uplink_congestion);
  // Contextual-bandit setting (gamma = 0): reward is the negative latency.
  learner_.UpdateTerminal(state, action, -latency_ms);
}

}  // namespace myrtus::mirto
