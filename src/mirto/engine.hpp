// The multi-layer 360° orchestrator: one MIRTO agent per continuum layer,
// each owning its layer's kube-like cluster, negotiating workload placement
// with its peers over the network via a contract-net protocol (§IV: "the
// MIRTO agents communicate with each other to negotiate the usage of
// resources and interoperability of services over multiple layers").
#pragma once

#include <array>
#include <functional>
#include <memory>
#include <string>

#include "kb/store.hpp"
#include "mirto/agent.hpp"
#include "mirto/peering.hpp"
#include "net/retry.hpp"

namespace myrtus::mirto {

struct EngineConfig {
  PlacementStrategy strategy = PlacementStrategy::kGreedy;
  sim::SimTime mape_period = sim::SimTime::Millis(250);
  std::uint64_t seed = 1;
  std::string auth_secret = "myrtus-dev-secret";
  /// Weights of the bid cost model.
  double bid_energy_weight = 1.0;
  double bid_latency_weight = 1.0;
  double bid_load_weight = 2.0;
  /// Retry profile for the contract-net RPCs (bid, award) — negotiation must
  /// survive flaky edge links instead of declaring "no bidder".
  net::RetryPolicy negotiation_retry = [] {
    net::RetryPolicy p;
    p.max_attempts = 3;
    p.initial_backoff = sim::SimTime::Millis(25);
    p.attempt_timeout = sim::SimTime::Seconds(2);
    p.overall_deadline = sim::SimTime::Seconds(8);
    return p;
  }();
};

struct NegotiationStats {
  std::uint64_t announcements = 0;
  std::uint64_t bids_received = 0;
  std::uint64_t awards = 0;
  std::uint64_t failed_pods = 0;
};

class MirtoEngine {
 public:
  MirtoEngine(net::Network& network, continuum::Infrastructure& infra,
              EngineConfig config = {});

  /// Starts all agents (API daemons + MAPE-K loops) and registers the
  /// negotiation endpoints.
  void Start();
  void Stop();

  /// Deploys a CSAR by contract-net negotiation: for every pod, all layer
  /// agents are asked to bid; the cheapest feasible bid wins and the winning
  /// agent binds the pod. `done` fires once every pod is awarded (OK) or any
  /// pod found no bidder (RESOURCE_EXHAUSTED).
  void DeployNegotiated(const tosca::CsarPackage& package,
                        std::function<void(util::Status)> done);

  [[nodiscard]] MirtoAgent& agent(continuum::Layer layer);
  [[nodiscard]] sched::Cluster& cluster(continuum::Layer layer);
  [[nodiscard]] kb::Store& kb(continuum::Layer layer);
  [[nodiscard]] const NegotiationStats& negotiation_stats() const { return negotiation_; }
  [[nodiscard]] const AuthModule& auth() const { return auth_; }

  /// Host id of a layer's agent ("mirto-edge", ...).
  static std::string AgentHost(continuum::Layer layer);

  /// Total running pods across all layer clusters.
  [[nodiscard]] std::size_t TotalRunningPods();
  /// Total energy drawn across the infrastructure (mJ, active only).
  [[nodiscard]] double TotalEnergyMj() const;

 private:
  struct LayerSlice {
    std::unique_ptr<sched::Cluster> cluster;
    std::unique_ptr<kb::Store> store;
    std::unique_ptr<MirtoAgent> agent;
  };

  /// Cost this layer would incur hosting `pod`; NOT_FOUND when infeasible.
  util::StatusOr<double> ComputeBid(continuum::Layer layer,
                                    const sched::PodSpec& pod);
  void NegotiatePod(std::shared_ptr<std::vector<sched::PodSpec>> pods,
                    std::size_t index, std::shared_ptr<int> failures,
                    std::function<void(util::Status)> done);

  net::Network& network_;
  continuum::Infrastructure& infra_;
  EngineConfig config_;
  AuthModule auth_;
  std::array<LayerSlice, 3> layers_;  // indexed by Layer
  NegotiationStats negotiation_;
};

}  // namespace myrtus::mirto
