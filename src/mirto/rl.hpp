// Tabular Q-learning for the Network Manager (§VI: "historical batch data
// needed to implement, for example, Reinforcement Learning-based strategy
// within the Network Manager"). A generic discounted Q-learner over small
// discretized state spaces, plus an offload-target selector that learns,
// from KB-style congestion history, which layer to route a flow through.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace myrtus::mirto {

/// Generic tabular Q-learning with epsilon-greedy exploration.
class QLearner {
 public:
  QLearner(std::size_t states, std::size_t actions, double alpha = 0.2,
           double gamma = 0.9, double epsilon = 0.1);

  /// Epsilon-greedy action for a state.
  [[nodiscard]] std::size_t ChooseAction(std::size_t state, util::Rng& rng) const;
  /// Greedy (exploitation-only) action.
  [[nodiscard]] std::size_t BestAction(std::size_t state) const;
  /// Q-update after observing (s, a, r, s').
  void Update(std::size_t state, std::size_t action, double reward,
              std::size_t next_state);
  /// Terminal-transition update (no bootstrap).
  void UpdateTerminal(std::size_t state, std::size_t action, double reward);

  [[nodiscard]] double Q(std::size_t state, std::size_t action) const;
  void set_epsilon(double e) { epsilon_ = e; }
  [[nodiscard]] std::size_t states() const { return states_; }
  [[nodiscard]] std::size_t actions() const { return actions_; }

 private:
  std::size_t states_;
  std::size_t actions_;
  double alpha_;
  double gamma_;
  double epsilon_;
  std::vector<double> q_;  // states x actions
};

/// RL-driven offload-target choice for the Network Manager. State = (own
/// congestion bucket, uplink congestion bucket); actions = {gateway, fmdc,
/// cloud}. Reward = negative observed delivery latency. Learns online from
/// the latencies the transport actually measured.
class RlOffloadSelector {
 public:
  explicit RlOffloadSelector(std::uint64_t seed);

  static constexpr std::size_t kCongestionBuckets = 4;
  static constexpr std::size_t kActions = 3;  // gateway / fmdc / cloud

  [[nodiscard]] static std::size_t EncodeState(double own_congestion,
                                               double uplink_congestion);
  /// Picks a target layer (0=gateway, 1=fmdc, 2=cloud) for the current state.
  [[nodiscard]] std::size_t ChooseTarget(double own_congestion,
                                         double uplink_congestion,
                                         bool explore = true);
  /// Feeds back the measured latency for the last (state, action).
  void Reward(double own_congestion, double uplink_congestion,
              std::size_t action, double latency_ms);

  [[nodiscard]] const QLearner& learner() const { return learner_; }
  QLearner& mutable_learner() { return learner_; }

 private:
  QLearner learner_;
  util::Rng rng_;
};

}  // namespace myrtus::mirto
