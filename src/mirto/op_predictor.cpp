#include "mirto/op_predictor.hpp"

namespace myrtus::mirto {

void OperatingPointLearner::Observe(double utilization, double deadline_slack,
                                    bool fast_needed) {
  data_.push_back(fl::Example{{utilization, deadline_slack},
                              fast_needed ? 1.0 : 0.0});
  // Bounded buffer: keep the freshest 2048 observations.
  if (data_.size() > 2048) {
    data_.erase(data_.begin(), data_.begin() + 1024);
  }
}

void OperatingPointLearner::TrainLocal(int epochs, double learning_rate) {
  for (int e = 0; e < epochs; ++e) {
    model_.TrainEpoch(data_, learning_rate, rng_);
  }
}

double OperatingPointLearner::PredictFastNeeded(double utilization,
                                                double deadline_slack) const {
  return model_.Predict({utilization, deadline_slack});
}

FederationReport FederateLearners(std::vector<OperatingPointLearner*> learners,
                                  int rounds, std::uint64_t seed) {
  FederationReport report;
  report.rounds = rounds;
  std::vector<fl::Dataset> datasets;
  datasets.reserve(learners.size());
  for (const OperatingPointLearner* l : learners) datasets.push_back(l->data());

  fl::FederatedTrainer trainer(std::move(datasets), 2,
                               fl::LinearModel::Link::kLogistic, seed);
  fl::FederatedConfig config;
  config.rounds = rounds;
  config.local_epochs = 2;
  config.learning_rate = 0.3;
  fl::FederatedMetrics metrics;
  const fl::LinearModel global = trainer.Train(config, &metrics);
  report.bytes_exchanged = metrics.bytes_uploaded + metrics.bytes_downloaded;
  if (!metrics.global_loss_per_round.empty()) {
    report.global_loss = metrics.global_loss_per_round.back();
  }
  // Broadcast the federated model back into every agent.
  const std::vector<double> params = global.Parameters();
  for (OperatingPointLearner* l : learners) {
    l->model().SetParameters(params);
  }
  return report;
}

NodeManager::Decision LearnedNodeManager::Plan(continuum::ComputeNode& node,
                                               std::size_t device_index,
                                               double recent_slack) const {
  NodeManager::Decision decision;
  decision.node_id = node.id();
  decision.device_index = device_index;
  const continuum::Device& device = node.devices()[device_index];
  decision.operating_point = device.active_point_index();

  const double util = node.Utilization(device_index);
  if (learner_.data().size() < kMinObservations) {
    // Cold start: plain hysteresis.
    NodeManager fallback;
    auto all = fallback.PlanNode(node);
    return device_index < all.size() ? all[device_index] : decision;
  }
  const double p_fast = learner_.PredictFastNeeded(util, recent_slack);
  const std::size_t target =
      p_fast >= 0.5 ? 0 : device.operating_points().size() - 1;
  if (target != device.active_point_index()) {
    decision.operating_point = target;
    decision.changed = true;
  }
  return decision;
}

}  // namespace myrtus::mirto
