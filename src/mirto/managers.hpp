// The four optimization drivers of the MIRTO Manager (§IV): workload
// management, node management, network management, and privacy & security
// management. Each driver is a self-contained decision component; the MIRTO
// agent composes them inside its MAPE-K loop, and §VI's interaction pattern
// (WL Manager gathering resource state, KB history, network costs, and
// security constraints before issuing directives) is realized in
// WlManager::PlanPlacement.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "continuum/node.hpp"
#include "kb/registry.hpp"
#include "net/topology.hpp"
#include "sched/controller.hpp"
#include "swarm/placement.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::mirto {

/// Placement strategy portfolio (§IV: "different flavors of MIRTO agents,
/// capable of operating under different AI-based algorithms").
enum class PlacementStrategy : std::uint8_t {
  kStaticKube,   // baseline: plain filter/score pipeline, no global view
  kGreedy,       // cost-model greedy
  kPso,          // particle swarm
  kAco,          // ant colony
  kRandom,       // ablation floor
};
std::string_view PlacementStrategyName(PlacementStrategy strategy);

/// --- Workload Manager -----------------------------------------------------
class WlManager {
 public:
  WlManager(sched::Cluster& cluster, PlacementStrategy strategy,
            std::uint64_t seed);

  /// Decides node bindings for a pod set using the global cost model
  /// (energy + latency-to-gateway + balance), honoring vetoes from the
  /// security manager. Returns pod-name -> node-id directives.
  util::StatusOr<std::map<std::string, std::string>> PlanPlacement(
      const std::vector<sched::PodSpec>& pods,
      const std::map<std::string, double>& node_latency_cost_ms,
      const std::vector<std::string>& vetoed_nodes);

  /// Applies directives: binds each pod to its planned node via a pinning
  /// label (falls back to the scheduler when a directive fails).
  util::Status Execute(const std::vector<sched::PodSpec>& pods,
                       const std::map<std::string, std::string>& directives);

  [[nodiscard]] PlacementStrategy strategy() const { return strategy_; }

 private:
  sched::Cluster& cluster_;
  PlacementStrategy strategy_;
  util::Rng rng_;
};

/// --- Node Manager -----------------------------------------------------------
/// Chooses device operating points from observed load: the edge-agent
/// behaviour of §IV ("estimate the best operating point of a workload and,
/// given the current status, change configuration accordingly").
class NodeManager {
 public:
  struct Decision {
    std::string node_id;
    std::size_t device_index;
    std::size_t operating_point;
    bool changed = false;
  };

  /// Hysteresis thresholds on device utilization.
  explicit NodeManager(double up_threshold = 0.75, double down_threshold = 0.25);

  /// Plans operating-point changes for all devices of a node: utilization
  /// above the up-threshold selects the fastest point; below the
  /// down-threshold selects the most efficient; in between holds.
  std::vector<Decision> PlanNode(continuum::ComputeNode& node);
  /// Applies a decision (pays the reconfiguration cost implicitly via the
  /// device's counter).
  util::Status Execute(continuum::ComputeNode& node, const Decision& decision);

  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigurations_; }
  [[nodiscard]] double up_threshold() const { return up_threshold_; }
  [[nodiscard]] double down_threshold() const { return down_threshold_; }

 private:
  double up_threshold_;
  double down_threshold_;
  std::uint64_t reconfigurations_ = 0;
};

/// --- Network Manager --------------------------------------------------------
/// Derives per-node communication costs and congestion signals from the
/// topology — the "application orchestration costs" input of §VI.
class NetworkManager {
 public:
  explicit NetworkManager(const net::Topology& topology);

  /// Latency (ms) from each node to a data source/consumer host. Unreachable
  /// nodes get +inf-ish cost.
  [[nodiscard]] std::map<std::string, double> LatencyCostMs(
      const std::string& anchor_host,
      const std::vector<std::string>& node_ids) const;

  /// Picks the cheapest node (by latency to anchor) among candidates.
  [[nodiscard]] util::StatusOr<std::string> NearestNode(
      const std::string& anchor_host,
      const std::vector<std::string>& node_ids) const;

 private:
  const net::Topology& topology_;
};

/// --- Privacy & Security Manager ---------------------------------------------
/// Maintains runtime trust indicators (§III: "trust-related KPIs to implement
/// trust and reputation schemes at runtime") and vetoes placements.
class PrivacySecurityManager {
 public:
  explicit PrivacySecurityManager(double veto_threshold = 0.4);

  /// Records an outcome on a node; failures decay trust, successes recover it.
  void RecordOutcome(const std::string& node_id, bool success);
  [[nodiscard]] double TrustOf(const std::string& node_id) const;
  /// Nodes currently below the veto threshold.
  [[nodiscard]] std::vector<std::string> VetoedNodes() const;
  /// True when a pod may run on the node: security level satisfied and node
  /// trusted.
  [[nodiscard]] bool Permits(const sched::PodSpec& pod,
                             const continuum::ComputeNode& node) const;
  /// Publishes trust scores into the registry — dirty-driven: only nodes
  /// whose trust actually changed since the last publish are rewritten.
  /// Nodes without a registry record yet stay queued for the next call.
  void PublishTrust(kb::ResourceRegistry& registry);

 private:
  double veto_threshold_;
  std::map<std::string, double> trust_;  // default 1.0
  std::set<std::string> pending_publish_;  // trust changed since last publish
};

}  // namespace myrtus::mirto
