#include "mirto/agent.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace myrtus::mirto {

std::vector<telemetry::SloObjective> DefaultAgentSlos() {
  telemetry::SloObjective availability;
  availability.name = "fleet.availability";
  availability.kind = telemetry::SloObjective::Kind::kAvailability;
  availability.target = 0.95;          // budget: 1 node of 20 down
  availability.burn_rate_threshold = 2.0;
  telemetry::SloObjective start_wait;
  start_wait.name = "pod.start_wait";
  start_wait.kind = telemetry::SloObjective::Kind::kLatency;
  start_wait.latency_threshold_ms = 500.0;  // two MAPE periods at defaults
  start_wait.target = 0.9;
  start_wait.burn_rate_threshold = 2.0;
  return {availability, start_wait};
}

AuthModule::AuthModule(util::Bytes shared_secret)
    : secret_(std::move(shared_secret)) {}

std::string AuthModule::IssueToken(const std::string& principal) const {
  const util::Bytes mac = security::HmacSha256(secret_, util::BytesOf(principal));
  return principal + "." + util::ToHex(mac);
}

util::StatusOr<std::string> AuthModule::Authenticate(
    const std::string& token) const {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos) {
    return util::Status::Unauthenticated("malformed token");
  }
  const std::string principal = token.substr(0, dot);
  const util::Bytes expected =
      security::HmacSha256(secret_, util::BytesOf(principal));
  auto provided = util::FromHex(token.substr(dot + 1));
  if (!provided.ok() || !util::ConstantTimeEqual(*provided, expected)) {
    return util::Status::Unauthenticated("bad token for " + principal);
  }
  return principal;
}

MirtoAgent::MirtoAgent(net::Network& network, sched::Cluster& cluster,
                       continuum::Infrastructure& infra, kb::Store& kb_store,
                       AuthModule auth, AgentConfig config)
    : network_(network),
      cluster_(cluster),
      infra_(infra),
      kb_(kb_store),
      registry_(kb_store),
      auth_(std::move(auth)),
      config_(std::move(config)),
      wl_(cluster, config_.strategy, config_.seed),
      node_(),
      netmgr_(network.topology()),
      psm_() {
  // Observability is watch-driven, not poll-only: a component record
  // vanishing from the registry (e.g. heartbeat-lease expiry) marks the
  // fleet dirty for the next MAPE Analyze pass.
  registry_watch_ = kb_.Watch(
      kb::ResourceRegistry::NodeKey(""), [this](const kb::WatchEvent& event) {
        if (event.type == kb::WatchEvent::Type::kDelete) {
          failure_signal_ = true;
        }
      });
  for (const telemetry::SloObjective& objective : config_.slo_objectives) {
    // LINT: discard(the defaults are valid by construction; a caller-supplied
    // bad objective degrades to "not tracked" rather than aborting the agent)
    (void)slo_.AddObjective(objective);
  }
  slo_.set_transition_handler(
      [this](const std::string&, const telemetry::SloStatus&, bool breached) {
        if (breached) ++stats_.slo_breaches;
      });
}

void MirtoAgent::Start() {
  network_.RegisterRpc(
      config_.host, "mirto.deploy",
      [this](const net::HostId&, const util::Json& req)
          -> util::StatusOr<util::Json> {
        auto principal = auth_.Authenticate(req.at("token").as_string());
        if (!principal.ok()) {
          ++stats_.auth_failures;
          return principal.status();
        }
        auto package = tosca::CsarPackage::Unpack(req.at("csar").as_string());
        if (!package.ok()) {
          ++stats_.deployments_rejected;
          return package.status();
        }
        const util::Status deployed = Deploy(*package);
        if (!deployed.ok()) return deployed;
        return util::Json::MakeObject()
            .Set("status", "deployed")
            .Set("principal", *principal);
      });
  network_.RegisterRpc(
      config_.host, "mirto.undeploy",
      [this](const net::HostId&, const util::Json& req)
          -> util::StatusOr<util::Json> {
        auto principal = auth_.Authenticate(req.at("token").as_string());
        if (!principal.ok()) {
          ++stats_.auth_failures;
          return principal.status();
        }
        MYRTUS_RETURN_IF_ERROR(Undeploy(req.at("app").as_string()));
        return util::Json::MakeObject().Set("status", "undeployed");
      });
  network_.RegisterRpc(
      config_.host, "mirto.status",
      [this](const net::HostId&, const util::Json&)
          -> util::StatusOr<util::Json> {
        return util::Json::MakeObject()
            .Set("running_pods", cluster_.RunningPods())
            .Set("pending_pods", cluster_.PendingPods())
            .Set("mape_iterations", stats_.mape_iterations)
            .Set("strategy", std::string(PlacementStrategyName(wl_.strategy())));
      });
  loop_ = network_.engine().SchedulePeriodic(config_.mape_period,
                                             [this] { RunMapeIteration(); });
}

void MirtoAgent::Stop() {
  network_.engine().Cancel(loop_);
  loop_ = {};
}

util::Status MirtoAgent::Deploy(const tosca::CsarPackage& package) {
  auto tpl = package.EntryTemplate();
  if (!tpl.ok()) {
    ++stats_.deployments_rejected;
    return tpl.status();
  }
  // TOSCA Validation Processor (Fig. 3) runs inside LowerToPods.
  auto pods = tosca::LowerToPods(*tpl);
  if (!pods.ok()) {
    ++stats_.deployments_rejected;
    return pods.status();
  }
  // Application identity: the CSAR entry file name (without extension).
  std::string app_name = "app";
  if (auto entry = package.EntryPath(); entry.ok()) {
    app_name = *entry;
    const std::size_t slash = app_name.rfind('/');
    if (slash != std::string::npos) app_name = app_name.substr(slash + 1);
    const std::size_t dot = app_name.rfind('.');
    if (dot != std::string::npos) app_name = app_name.substr(0, dot);
  }
  // In-place update: drop the previous incarnation's pods first.
  if (app_pods_.count(app_name) > 0) {
    MYRTUS_RETURN_IF_ERROR(Undeploy(app_name));
  }

  // Gather network costs (Network Manager) and vetoes (P&S Manager), then
  // plan (WL Manager) — the §VI interaction pattern.
  std::vector<std::string> node_ids;
  for (const auto& node : infra_.nodes) node_ids.push_back(node->id());
  const std::string anchor = config_.gateway_anchor.empty()
                                 ? infra_.DefaultGateway()
                                 : config_.gateway_anchor;
  const auto latency_costs = netmgr_.LatencyCostMs(anchor, node_ids);
  auto directives = wl_.PlanPlacement(*pods, latency_costs, psm_.VetoedNodes());
  if (!directives.ok()) {
    ++stats_.deployments_rejected;
    return directives.status();
  }
  const util::Status executed = wl_.Execute(*pods, *directives);
  if (!executed.ok()) {
    ++stats_.deployments_rejected;
    return executed;
  }
  ++stats_.deployments_accepted;

  // Record placements in the KB (Resource Registry / workload records) and
  // track the app's pod set for lifecycle management.
  std::vector<std::string>& tracked = app_pods_[app_name];
  const std::int64_t deployed_at_ns = network_.engine().Now().ns;
  for (const sched::PodSpec& pod : *pods) {
    const sched::Pod* bound = cluster_.FindPod(pod.name);
    tracked.push_back(pod.name);
    pod_created_ns_[pod.name] = deployed_at_ns;
    registry_.PutWorkload(
        pod.name, util::Json::MakeObject()
                      .Set("app", app_name)
                      .Set("node", bound != nullptr ? bound->node_id : "")
                      .Set("cpu", pod.cpu_request)
                      .Set("min_security",
                           std::string(security::SecurityLevelName(pod.min_security))));
  }
  return util::Status::Ok();
}

util::Status MirtoAgent::Undeploy(const std::string& app_name) {
  const auto it = app_pods_.find(app_name);
  if (it == app_pods_.end()) {
    return util::Status::NotFound("application " + app_name + " not deployed");
  }
  for (const std::string& pod : it->second) {
    // LINT: discard(pod may already be gone after failures; undeploy is
    // idempotent by design)
    (void)cluster_.DeletePod(pod);
    kb_.Delete(kb::ResourceRegistry::WorkloadKey(pod));
    pod_created_ns_.erase(pod);
  }
  app_pods_.erase(it);
  return util::Status::Ok();
}

std::vector<std::string> MirtoAgent::DeployedApps() const {
  std::vector<std::string> out;
  for (const auto& [app, pods] : app_pods_) out.push_back(app);
  return out;
}

void MirtoAgent::RunMapeIteration() {
  ++stats_.mape_iterations;
  telemetry::ScopedSpan span("mape.iteration", "mirto");
  span.SetAttribute("agent", config_.host);
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add("myrtus_mirto_mape_iterations_total", 1.0,
                                    {{"agent", config_.host}});
  }
  Monitor();
  Analyze();
  Plan();
  Execute();
  // Pool utilization gauges ride the same cadence as the loop itself, so a
  // Prometheus dump shows how much of the MAPE work actually fanned out.
  telemetry::EmitParallelPoolStats();
}

void MirtoAgent::Monitor() {
  telemetry::ScopedSpan span("mape.monitor", "mirto");
  const std::int64_t now_ns = network_.engine().Now().ns;
  for (const auto& node : infra_.nodes) {
    kb::NodeRecord record;
    record.node_id = node->id();
    record.layer = std::string(continuum::LayerName(node->layer()));
    record.kind = node->kind();
    record.ready = node->up();
    record.cpu_capacity = node->CpuCapacity();
    record.mem_capacity_mb = node->mem_capacity_mb();
    record.mem_allocated_mb = node->mem_allocated_mb();
    record.security_level = static_cast<int>(node->security_level());
    record.trust_score = psm_.TrustOf(node->id());
    if (const sched::NodeState* state = cluster_.FindNodeState(node->id())) {
      record.cpu_allocated = state->cpu_allocated();
      record.has_accelerator = state->HasAccelerator();
    }
    record.energy_mj = node->total_energy_mj();
    registry_.PutNode(record);
    if (!node->devices().empty()) {
      registry_.AppendTelemetry(node->id(), "utilization",
                                {now_ns, node->Utilization(0)});
    }
    registry_.AppendTelemetry(node->id(), "queue_depth",
                              {now_ns, static_cast<double>(node->QueueDepth())});
    slo_.RecordAvailability("fleet.availability", node->up(), now_ns);
  }
  // Pod start wait: pods record their deploy-to-bind latency once bound, and
  // a growing bad observation each pass while they stay pending, so sustained
  // scheduling pressure burns the latency error budget.
  for (auto it = pod_created_ns_.begin(); it != pod_created_ns_.end();) {
    const sched::Pod* pod = cluster_.FindPod(it->first);
    if (pod == nullptr) {
      it = pod_created_ns_.erase(it);
      continue;
    }
    if (pod->bound_at_ns >= 0) {
      const double wait_ms =
          static_cast<double>(pod->bound_at_ns - it->second) / 1e6;
      slo_.RecordLatencyMs("pod.start_wait", wait_ms, now_ns);
      it = pod_created_ns_.erase(it);
    } else {
      const double age_ms = static_cast<double>(now_ns - it->second) / 1e6;
      slo_.RecordLatencyMs("pod.start_wait", age_ms, now_ns);
      ++it;
    }
  }
}

void MirtoAgent::Analyze() {
  telemetry::ScopedSpan span("mape.analyze", "mirto");
  reallocation_needed_ = failure_signal_;
  failure_signal_ = false;
  for (const auto& node : infra_.nodes) {
    const bool healthy = node->up();
    psm_.RecordOutcome(node->id(), healthy);
    if (!healthy && !cluster_.PodsOnNode(node->id()).empty()) {
      reallocation_needed_ = true;
    }
  }
  if (cluster_.PendingPods() > 0) reallocation_needed_ = true;

  // SLO self-monitoring closes the loop: burn rates computed from Monitor's
  // own observations decide whether the agent considers itself in violation,
  // and the verdict is published to the KB for peers and the next pass.
  const std::int64_t now_ns = network_.engine().Now().ns;
  slo_.Evaluate(now_ns);
  const std::vector<std::string> breached = slo_.Breached();
  if (!breached.empty()) {
    reallocation_needed_ = true;
    std::string joined;
    for (const std::string& name : breached) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    span.SetAttribute("slo_breach", joined);
  }
  for (const telemetry::SloObjective& objective : config_.slo_objectives) {
    if (const telemetry::SloStatus* s = slo_.Find(objective.name)) {
      registry_.PutSloState(
          config_.host, objective.name,
          util::Json::MakeObject()
              .Set("state", std::string(telemetry::SloStateName(s->state)))
              .Set("fast_burn_rate", s->fast_burn_rate)
              .Set("slow_burn_rate", s->slow_burn_rate)
              .Set("breaches", s->breaches)
              .Set("at_ns", now_ns));
    }
  }
}

void MirtoAgent::Plan() {
  telemetry::ScopedSpan span("mape.plan", "mirto");
  planned_points_.clear();
  for (const auto& node : infra_.nodes) {
    if (!node->up()) continue;
    for (const NodeManager::Decision& d : node_.PlanNode(*node)) {
      if (d.changed) planned_points_.push_back(d);
    }
  }
}

void MirtoAgent::Execute() {
  telemetry::ScopedSpan span("mape.execute", "mirto");
  for (const NodeManager::Decision& d : planned_points_) {
    if (continuum::ComputeNode* node = infra_.FindNode(d.node_id)) {
      if (node_.Execute(*node, d).ok()) ++stats_.operating_point_changes;
    }
  }
  if (reallocation_needed_) {
    const std::uint64_t before = cluster_.reschedules();
    cluster_.Reconcile();
    stats_.reallocations += cluster_.reschedules() - before;
  }
  psm_.PublishTrust(registry_);
}

}  // namespace myrtus::mirto
