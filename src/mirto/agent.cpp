#include "mirto/agent.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"
#include "util/units.hpp"

namespace myrtus::mirto {

std::vector<telemetry::SloObjective> DefaultAgentSlos() {
  telemetry::SloObjective availability;
  availability.name = "fleet.availability";
  availability.kind = telemetry::SloObjective::Kind::kAvailability;
  availability.target = 0.95;          // budget: 1 node of 20 down
  availability.burn_rate_threshold = 2.0;
  telemetry::SloObjective start_wait;
  start_wait.name = "pod.start_wait";
  start_wait.kind = telemetry::SloObjective::Kind::kLatency;
  start_wait.latency_threshold_ms = 500.0;  // two MAPE periods at defaults
  start_wait.target = 0.9;
  start_wait.burn_rate_threshold = 2.0;
  return {availability, start_wait};
}

AuthModule::AuthModule(util::Bytes shared_secret)
    : secret_(std::move(shared_secret)) {}

std::string AuthModule::IssueToken(const std::string& principal) const {
  const util::Bytes mac = security::HmacSha256(secret_, util::BytesOf(principal));
  return principal + "." + util::ToHex(mac);
}

util::StatusOr<std::string> AuthModule::Authenticate(
    const std::string& token) const {
  const std::size_t dot = token.rfind('.');
  if (dot == std::string::npos) {
    return util::Status::Unauthenticated("malformed token");
  }
  const std::string principal = token.substr(0, dot);
  const util::Bytes expected =
      security::HmacSha256(secret_, util::BytesOf(principal));
  auto provided = util::FromHex(token.substr(dot + 1));
  if (!provided.ok() || !util::ConstantTimeEqual(*provided, expected)) {
    return util::Status::Unauthenticated("bad token for " + principal);
  }
  return principal;
}

MirtoAgent::MirtoAgent(net::Network& network, sched::Cluster& cluster,
                       continuum::Infrastructure& infra, kb::Store& kb_store,
                       AuthModule auth, AgentConfig config)
    : network_(network),
      cluster_(cluster),
      infra_(infra),
      kb_(kb_store),
      registry_(kb_store),
      auth_(std::move(auth)),
      config_(std::move(config)),
      wl_(cluster, config_.strategy, config_.seed),
      node_(),
      netmgr_(network.topology()),
      psm_(),
      monitor_path_(config_.monitor_path) {
  // Observability is watch-driven, not poll-only: a component record
  // vanishing from the registry (e.g. heartbeat-lease expiry) marks the
  // fleet dirty for the next MAPE Analyze pass, and any external write under
  // /registry/nodes/ is mirrored into the change-tracker dirty set so the
  // incremental Monitor re-observes that node. The agent's own registry
  // writes are suppressed via self_registry_write_ (Store::Notify fires
  // synchronously inside Put/Delete).
  registry_watch_ = kb_.Watch(
      kb::ResourceRegistry::NodeKey(""), [this](const kb::WatchEvent& event) {
        if (event.type == kb::WatchEvent::Type::kDelete) {
          failure_signal_ = true;
        }
        if (self_registry_write_ || tracker_listener_ < 0) return;
        const std::string prefix = kb::ResourceRegistry::NodeKey("");
        if (event.kv.key.size() <= prefix.size()) return;
        infra_.change_tracker().MarkDirtyById(
            infra_.nodes, event.kv.key.substr(prefix.size()),
            tracker_listener_);
      });
  // Deploy-to-bind waits are event-driven: the cluster tells us when a
  // tracked pod binds or disappears, so Monitor never sweeps all pods.
  cluster_.AddPodEventListener(sched::Cluster::PodEvents{
      [this](const std::string& pod_name) {
        const auto it = pending_pods_.find(pod_name);
        if (it == pending_pods_.end()) return;
        const sched::PodView pod = cluster_.FindPod(pod_name);
        if (!pod.valid() || pod.bound_at_ns() < 0) return;
        bound_waits_[pod_name] =
            static_cast<double>(pod.bound_at_ns() - it->second.created_ns) /
            1e6;
        if (it->second.old) --pending_old_;
        pending_pods_.erase(it);
      },
      [this](const std::string& pod_name) { UntrackPod(pod_name); }});
  for (const telemetry::SloObjective& objective : config_.slo_objectives) {
    // LINT: discard(the defaults are valid by construction; a caller-supplied
    // bad objective degrades to "not tracked" rather than aborting the agent)
    (void)slo_.AddObjective(objective);
    if (objective.name == "pod.start_wait" &&
        objective.kind == telemetry::SloObjective::Kind::kLatency) {
      pending_threshold_ns_ = static_cast<std::int64_t>(
          std::llround(objective.latency_threshold_ms * 1e6));
    }
  }
  slo_.set_transition_handler(
      [this](const std::string&, const telemetry::SloStatus&, bool breached) {
        if (breached) ++stats_.slo_breaches;
      });
}

void MirtoAgent::set_monitor_path(MonitorPath path) {
  if (path == monitor_path_) return;
  monitor_path_ = path;
  // Reset the incremental caches on every switch. Entering kIncremental
  // registers a fresh listener lazily — all nodes start dirty for it, so the
  // first incremental iteration re-observes the entire fleet.
  if (tracker_listener_ >= 0) {
    infra_.change_tracker().RemoveListener(tracker_listener_);
    tracker_listener_ = -1;
  }
  observed_up_.clear();
  observed_up_count_ = 0;
  down_nodes_.clear();
  healing_nodes_.clear();
  plan_crossings_ = {};
  plan_queued_cross_ns_.clear();
  iter_dirty_.clear();
}

void MirtoAgent::EnsureTrackerListener() {
  if (tracker_listener_ >= 0) return;
  tracker_listener_ = infra_.change_tracker().AddListener(infra_.nodes);
}

void MirtoAgent::Start() {
  network_.RegisterRpc(
      config_.host, "mirto.deploy",
      [this](const net::HostId&, const util::Json& req)
          -> util::StatusOr<util::Json> {
        auto principal = auth_.Authenticate(req.at("token").as_string());
        if (!principal.ok()) {
          ++stats_.auth_failures;
          return principal.status();
        }
        auto package = tosca::CsarPackage::Unpack(req.at("csar").as_string());
        if (!package.ok()) {
          ++stats_.deployments_rejected;
          return package.status();
        }
        const util::Status deployed = Deploy(*package);
        if (!deployed.ok()) return deployed;
        return util::Json::MakeObject()
            .Set("status", "deployed")
            .Set("principal", *principal);
      });
  network_.RegisterRpc(
      config_.host, "mirto.undeploy",
      [this](const net::HostId&, const util::Json& req)
          -> util::StatusOr<util::Json> {
        auto principal = auth_.Authenticate(req.at("token").as_string());
        if (!principal.ok()) {
          ++stats_.auth_failures;
          return principal.status();
        }
        MYRTUS_RETURN_IF_ERROR(Undeploy(req.at("app").as_string()));
        return util::Json::MakeObject().Set("status", "undeployed");
      });
  network_.RegisterRpc(
      config_.host, "mirto.status",
      [this](const net::HostId&, const util::Json&)
          -> util::StatusOr<util::Json> {
        return util::Json::MakeObject()
            .Set("running_pods", cluster_.RunningPods())
            .Set("pending_pods", cluster_.PendingPods())
            .Set("mape_iterations", stats_.mape_iterations)
            .Set("strategy", std::string(PlacementStrategyName(wl_.strategy())));
      });
  loop_ = network_.engine().SchedulePeriodic(config_.mape_period,
                                             [this] { RunMapeIteration(); });
}

void MirtoAgent::Stop() {
  network_.engine().Cancel(loop_);
  loop_ = {};
}

util::Status MirtoAgent::Deploy(const tosca::CsarPackage& package) {
  auto tpl = package.EntryTemplate();
  if (!tpl.ok()) {
    ++stats_.deployments_rejected;
    return tpl.status();
  }
  // TOSCA Validation Processor (Fig. 3) runs inside LowerToPods.
  auto pods = tosca::LowerToPods(*tpl);
  if (!pods.ok()) {
    ++stats_.deployments_rejected;
    return pods.status();
  }
  // Application identity: the CSAR entry file name (without extension).
  std::string app_name = "app";
  if (auto entry = package.EntryPath(); entry.ok()) {
    app_name = *entry;
    const std::size_t slash = app_name.rfind('/');
    if (slash != std::string::npos) app_name = app_name.substr(slash + 1);
    const std::size_t dot = app_name.rfind('.');
    if (dot != std::string::npos) app_name = app_name.substr(0, dot);
  }
  // In-place update: drop the previous incarnation's pods first.
  if (app_pods_.count(app_name) > 0) {
    MYRTUS_RETURN_IF_ERROR(Undeploy(app_name));
  }

  // Gather network costs (Network Manager) and vetoes (P&S Manager), then
  // plan (WL Manager) — the §VI interaction pattern.
  std::vector<std::string> node_ids;
  for (const auto& node : infra_.nodes) node_ids.push_back(node->id());
  const std::string anchor = config_.gateway_anchor.empty()
                                 ? infra_.DefaultGateway()
                                 : config_.gateway_anchor;
  const auto latency_costs = netmgr_.LatencyCostMs(anchor, node_ids);
  auto directives = wl_.PlanPlacement(*pods, latency_costs, psm_.VetoedNodes());
  if (!directives.ok()) {
    ++stats_.deployments_rejected;
    return directives.status();
  }
  const util::Status executed = wl_.Execute(*pods, *directives);
  if (!executed.ok()) {
    ++stats_.deployments_rejected;
    return executed;
  }
  ++stats_.deployments_accepted;

  // Record placements in the KB (Resource Registry / workload records) and
  // track the app's pod set for lifecycle management.
  std::vector<std::string>& tracked = app_pods_[app_name];
  const std::int64_t deployed_at_ns = network_.engine().Now().ns;
  for (const sched::PodSpec& pod : *pods) {
    const sched::PodView bound = cluster_.FindPod(pod.name);
    tracked.push_back(pod.name);
    TrackPodCreated(pod.name, deployed_at_ns);
    registry_.PutWorkload(
        pod.name, util::Json::MakeObject()
                      .Set("app", app_name)
                      .Set("node", bound.valid() ? bound.node_id() : "")
                      .Set("cpu", pod.cpu_request)
                      .Set("min_security",
                           std::string(security::SecurityLevelName(pod.min_security))));
  }
  return util::Status::Ok();
}

util::Status MirtoAgent::Undeploy(const std::string& app_name) {
  const auto it = app_pods_.find(app_name);
  if (it == app_pods_.end()) {
    return util::Status::NotFound("application " + app_name + " not deployed");
  }
  for (const std::string& pod : it->second) {
    // LINT: discard(pod may already be gone after failures; undeploy is
    // idempotent by design)
    (void)cluster_.DeletePod(pod);
    kb_.Delete(kb::ResourceRegistry::WorkloadKey(pod));
    UntrackPod(pod);  // the delete hook already ran when the pod existed
  }
  app_pods_.erase(it);
  return util::Status::Ok();
}

void MirtoAgent::TrackPodCreated(const std::string& pod_name,
                                 std::int64_t created_ns) {
  // The workload manager may have bound the pod synchronously during
  // Deploy — credit its wait immediately; the bind hook has already fired
  // (and found the pod untracked) by the time we get here.
  const sched::PodView pod = cluster_.FindPod(pod_name);
  if (pod.valid() && pod.bound_at_ns() >= 0) {
    bound_waits_[pod_name] =
        static_cast<double>(pod.bound_at_ns() - created_ns) / 1e6;
    return;
  }
  pending_pods_[pod_name] = PendingTrack{created_ns, false};
  pending_young_.emplace_back(created_ns, pod_name);
}

void MirtoAgent::UntrackPod(const std::string& pod_name) {
  const auto it = pending_pods_.find(pod_name);
  if (it != pending_pods_.end()) {
    if (it->second.old) --pending_old_;
    pending_pods_.erase(it);
  }
  bound_waits_.erase(pod_name);
}

std::vector<std::string> MirtoAgent::DeployedApps() const {
  std::vector<std::string> out;
  for (const auto& [app, pods] : app_pods_) out.push_back(app);
  return out;
}

void MirtoAgent::RunMapeIteration() {
  ++stats_.mape_iterations;
  telemetry::ScopedSpan span("mape.iteration", "mirto");
  span.SetAttribute("agent", config_.host);
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add("myrtus_mirto_mape_iterations_total", 1.0,
                                    {{"agent", config_.host}});
  }
  Monitor();
  Analyze();
  Plan();
  Execute();
  // Pool utilization gauges ride the same cadence as the loop itself, so a
  // Prometheus dump shows how much of the MAPE work actually fanned out.
  telemetry::EmitParallelPoolStats();
}

void MirtoAgent::ObserveNode(std::size_t index, std::int64_t now_ns) {
  continuum::ComputeNode& node = *infra_.nodes[index];
  ++stats_.nodes_observed;
  kb::NodeRecord record;
  record.node_id = node.id();
  record.layer = std::string(continuum::LayerName(node.layer()));
  record.kind = node.kind();
  record.ready = node.up();
  record.cpu_capacity = node.CpuCapacity();
  record.mem_capacity_mb = node.mem_capacity_mb();
  record.mem_allocated_mb = node.mem_allocated_mb();
  record.security_level = static_cast<int>(node.security_level());
  record.trust_score = psm_.TrustOf(node.id());
  if (const sched::NodeState* state = cluster_.FindNodeState(node.id())) {
    record.cpu_allocated = state->cpu_allocated();
    record.has_accelerator = state->HasAccelerator();
  }
  record.energy_mj = node.total_energy_mj();
  self_registry_write_ = true;
  registry_.PutNode(record);
  self_registry_write_ = false;
  if (!node.devices().empty()) {
    registry_.AppendTelemetry(node.id(), "utilization",
                              {now_ns, node.Utilization(0)});
  }
  registry_.AppendTelemetry(node.id(), "queue_depth",
                            {now_ns, static_cast<double>(node.QueueDepth())});
  // Cached availability + Analyze attention sets. observed_up_ holds the
  // last observed state (0 unseen / 1 down / 2 up); unchanged nodes cannot
  // have flipped without marking themselves dirty (SetUp bumps the epoch).
  const bool up = node.up();
  const std::uint8_t state_now = up ? 2 : 1;
  if (observed_up_[index] != state_now) {
    if (observed_up_[index] == 2) --observed_up_count_;
    if (state_now == 2) ++observed_up_count_;
    observed_up_[index] = state_now;
  }
  if (up) {
    down_nodes_.erase(index);
    if (psm_.TrustOf(node.id()) < 1.0) healing_nodes_.insert(index);
  } else {
    down_nodes_.insert(index);
    healing_nodes_.erase(index);
  }
}

void MirtoAgent::Monitor() {
  telemetry::ScopedSpan span("mape.monitor", "mirto");
  const std::int64_t now_ns = network_.engine().Now().ns;
  if (monitor_path_ == MonitorPath::kFull) {
    MonitorFull(now_ns);
  } else {
    MonitorIncremental(now_ns);
  }
  FlushPodStartWaits(now_ns);
}

void MirtoAgent::MonitorFull(std::int64_t now_ns) {
  if (observed_up_.size() < infra_.nodes.size()) {
    observed_up_.resize(infra_.nodes.size(), 0);
  }
  for (std::size_t index = 0; index < infra_.nodes.size(); ++index) {
    ObserveNode(index, now_ns);
    slo_.RecordAvailability("fleet.availability", infra_.nodes[index]->up(),
                            now_ns);
  }
}

void MirtoAgent::MonitorIncremental(std::int64_t now_ns) {
  EnsureTrackerListener();
  iter_dirty_.clear();
  infra_.change_tracker().Drain(infra_.nodes, tracker_listener_, iter_dirty_);
  const std::size_t fleet = infra_.nodes.size();
  if (observed_up_.size() < fleet) observed_up_.resize(fleet, 0);
  for (const std::size_t index : iter_dirty_) ObserveNode(index, now_ns);
  // Every node has been observed at least once (a fresh listener starts
  // all-dirty), so the cached up-count covers the whole fleet and one bulk
  // observation is arithmetically identical to N per-node singles.
  slo_.RecordAvailabilityBulk("fleet.availability", observed_up_count_,
                              util::SubSat(fleet, observed_up_count_), now_ns);
}

void MirtoAgent::FlushPodStartWaits(std::int64_t now_ns) {
  // Pod start wait: pods record their deploy-to-bind latency once bound (the
  // bind hook captured it), and a growing bad observation each pass while
  // they stay pending, so sustained scheduling pressure burns the latency
  // error budget.
  for (const auto& [pod_name, wait_ms] : bound_waits_) {
    slo_.RecordLatencyMs("pod.start_wait", wait_ms, now_ns);
  }
  bound_waits_.clear();
  if (monitor_path_ == MonitorPath::kFull) {
    for (const auto& [pod_name, track] : pending_pods_) {
      const double age_ms =
          static_cast<double>(now_ns - track.created_ns) / 1e6;
      slo_.RecordLatencyMs("pod.start_wait", age_ms, now_ns);
    }
    return;
  }
  // Incremental: pending pods only matter as good/bad counts against the
  // latency threshold, and a pod crosses it exactly once — advance the
  // creation-ordered queue past the integer-ns boundary (equivalent to the
  // full path's `age_ms <= threshold_ms` double compare: both sides of the
  // boundary round to the same classification) and record one bulk
  // observation.
  if (pending_threshold_ns_ >= 0) {
    const std::int64_t boundary_ns = now_ns - pending_threshold_ns_;
    while (!pending_young_.empty() &&
           pending_young_.front().first < boundary_ns) {
      const auto [created_ns, pod_name] = pending_young_.front();
      pending_young_.pop_front();
      const auto it = pending_pods_.find(pod_name);
      if (it != pending_pods_.end() && it->second.created_ns == created_ns &&
          !it->second.old) {
        it->second.old = true;
        ++pending_old_;
      }
    }
  }
  slo_.RecordLatencyOutcomes("pod.start_wait",
                             util::SubSat(pending_pods_.size(), pending_old_),
                             pending_old_, now_ns);
}

void MirtoAgent::Analyze() {
  telemetry::ScopedSpan span("mape.analyze", "mirto");
  reallocation_needed_ = failure_signal_;
  failure_signal_ = false;
  if (monitor_path_ == MonitorPath::kFull) {
    AnalyzeFullTrust();
  } else {
    AnalyzeIncrementalTrust();
  }
  if (cluster_.PendingPods() > 0) reallocation_needed_ = true;
  EvaluateAndPublishSlos(span, network_.engine().Now().ns);
}

void MirtoAgent::AnalyzeFullTrust() {
  for (const auto& node : infra_.nodes) {
    const bool healthy = node->up();
    psm_.RecordOutcome(node->id(), healthy);
    if (!healthy && !cluster_.PodsOnNode(node->id()).empty()) {
      reallocation_needed_ = true;
    }
  }
}

void MirtoAgent::AnalyzeIncrementalTrust() {
  // Only two kinds of node can have their trust move this iteration: nodes
  // observed down (failure outcome, trust decays) and up nodes still healing
  // back toward 1.0 (success outcome). A success on a node at exactly 1.0 is
  // a no-op (1.0 * 0.95 + 0.05 == 1.0 in double), so skipping the rest of
  // the fleet leaves every TrustOf() value identical to the full walk.
  for (const std::size_t index : down_nodes_) {
    const continuum::ComputeNode& node = *infra_.nodes[index];
    psm_.RecordOutcome(node.id(), false);
    if (!cluster_.PodsOnNode(node.id()).empty()) {
      reallocation_needed_ = true;
    }
  }
  for (auto it = healing_nodes_.begin(); it != healing_nodes_.end();) {
    const continuum::ComputeNode& node = *infra_.nodes[*it];
    psm_.RecordOutcome(node.id(), true);
    if (psm_.TrustOf(node.id()) >= 1.0) {
      it = healing_nodes_.erase(it);
    } else {
      ++it;
    }
  }
}

void MirtoAgent::EvaluateAndPublishSlos(telemetry::ScopedSpan& span,
                                        std::int64_t now_ns) {
  // SLO self-monitoring closes the loop: burn rates computed from Monitor's
  // own observations decide whether the agent considers itself in violation,
  // and the verdict is published to the KB for peers and the next pass.
  slo_.Evaluate(now_ns);
  const std::vector<std::string> breached = slo_.Breached();
  if (!breached.empty()) {
    reallocation_needed_ = true;
    std::string joined;
    for (const std::string& name : breached) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    span.SetAttribute("slo_breach", joined);
  }
  // Verdicts are re-published only on a state/breach-count transition or
  // when a burn rate crosses a quantum bucket — steady state costs zero KB
  // writes instead of one serialized record per objective per iteration.
  const double quantum = config_.slo_publish_quantum;
  for (const telemetry::SloObjective& objective : config_.slo_objectives) {
    const telemetry::SloStatus* s = slo_.Find(objective.name);
    if (s == nullptr) continue;
    SloPublished& last = slo_published_[objective.name];
    SloPublished next;
    next.valid = true;
    next.state = s->state;
    next.breaches = s->breaches;
    if (quantum > 0.0) {
      next.fast_bucket =
          static_cast<std::int64_t>(std::floor(s->fast_burn_rate / quantum));
      next.slow_bucket =
          static_cast<std::int64_t>(std::floor(s->slow_burn_rate / quantum));
    }
    const bool unchanged = last.valid && quantum > 0.0 &&
                           last.state == next.state &&
                           last.breaches == next.breaches &&
                           last.fast_bucket == next.fast_bucket &&
                           last.slow_bucket == next.slow_bucket;
    if (unchanged) continue;
    last = next;
    ++stats_.slo_publishes;
    registry_.PutSloState(
        config_.host, objective.name,
        util::Json::MakeObject()
            .Set("state", std::string(telemetry::SloStateName(s->state)))
            .Set("fast_burn_rate", s->fast_burn_rate)
            .Set("slow_burn_rate", s->slow_burn_rate)
            .Set("breaches", s->breaches)
            .Set("at_ns", now_ns));
  }
}

void MirtoAgent::Plan() {
  telemetry::ScopedSpan span("mape.plan", "mirto");
  planned_points_.clear();
  if (monitor_path_ == MonitorPath::kFull) {
    PlanFull();
  } else {
    PlanIncremental(network_.engine().Now().ns);
  }
}

void MirtoAgent::PlanFull() {
  for (const auto& node : infra_.nodes) {
    if (!node->up()) continue;
    for (const NodeManager::Decision& d : node_.PlanNode(*node)) {
      if (d.changed) planned_points_.push_back(d);
    }
  }
}

void MirtoAgent::PlanIncremental(std::int64_t now_ns) {
  // A decision can only change for (a) nodes that mutated since the last
  // iteration (drained in Monitor) or (b) quiet nodes whose utilization —
  // strictly decaying while no work arrives — crosses below the eco
  // threshold; upward crossings require new work, which marks the node
  // dirty. (b) is predicted with a min-heap of crossing times, one queued
  // entry per node. Visiting a node early is harmless: PlanNode returns
  // changed=false, exactly like the full walk.
  plan_visit_.assign(iter_dirty_.begin(), iter_dirty_.end());
  if (plan_queued_cross_ns_.size() < infra_.nodes.size()) {
    plan_queued_cross_ns_.resize(infra_.nodes.size(), 0);
  }
  while (!plan_crossings_.empty() && plan_crossings_.top().first <= now_ns) {
    const std::size_t index = plan_crossings_.top().second;
    plan_crossings_.pop();
    plan_queued_cross_ns_[index] = 0;
    plan_visit_.push_back(index);
  }
  std::sort(plan_visit_.begin(), plan_visit_.end());
  plan_visit_.erase(std::unique(plan_visit_.begin(), plan_visit_.end()),
                    plan_visit_.end());
  for (const std::size_t index : plan_visit_) {
    continuum::ComputeNode& node = *infra_.nodes[index];
    if (!node.up()) continue;
    for (const NodeManager::Decision& d : node_.PlanNode(node)) {
      if (d.changed) planned_points_.push_back(d);
    }
    QueuePlanCrossing(index, now_ns);
  }
}

void MirtoAgent::QueuePlanCrossing(std::size_t index, std::int64_t now_ns) {
  if (plan_queued_cross_ns_[index] != 0) return;  // earlier entry fires first
  const continuum::ComputeNode& node = *infra_.nodes[index];
  const double down_threshold = node_.down_threshold();
  if (down_threshold <= 0.0) return;  // utilization can never dip below
  std::int64_t best_ns = std::numeric_limits<std::int64_t>::max();
  for (std::size_t d = 0; d < node.devices().size(); ++d) {
    const continuum::Device& device = node.devices()[d];
    if (device.active_point_index() + 1 >= device.operating_points().size()) {
      continue;  // already at the eco point; a down-crossing changes nothing
    }
    // util(t) = busy / (t - created) dips strictly below `down_threshold`
    // for all t past created + busy/down_threshold.
    const double cross = static_cast<double>(node.created_at().ns) +
                         static_cast<double>(node.BusyAccum(d).ns) /
                             down_threshold;
    if (cross >=
        static_cast<double>(std::numeric_limits<std::int64_t>::max() / 2)) {
      continue;
    }
    const std::int64_t cross_ns =
        std::max(static_cast<std::int64_t>(cross) + 1, now_ns + 1);
    best_ns = std::min(best_ns, cross_ns);
  }
  if (best_ns == std::numeric_limits<std::int64_t>::max()) return;
  plan_queued_cross_ns_[index] = best_ns;
  plan_crossings_.emplace(best_ns, index);
}

void MirtoAgent::Execute() {
  telemetry::ScopedSpan span("mape.execute", "mirto");
  for (const NodeManager::Decision& d : planned_points_) {
    if (continuum::ComputeNode* node = infra_.FindNode(d.node_id)) {
      if (node_.Execute(*node, d).ok()) ++stats_.operating_point_changes;
    }
  }
  if (reallocation_needed_) {
    const std::uint64_t before = cluster_.reschedules();
    cluster_.Reconcile();
    stats_.reallocations += cluster_.reschedules() - before;
  }
  self_registry_write_ = true;
  psm_.PublishTrust(registry_);
  self_registry_write_ = false;
}

}  // namespace myrtus::mirto
