#include "mirto/peering.hpp"

#include <algorithm>

namespace myrtus::mirto {

LiqoPeering::LiqoPeering(sim::Engine& engine, sched::Cluster& local,
                         sched::Cluster& remote, std::string remote_name)
    : local_(local), remote_(remote), virtual_id_("liqo-" + remote_name) {
  // Advertise the remote cluster's aggregate as one big virtual node. The
  // virtual node's security level is the weakest remote level: a pod pinned
  // to a higher level must not silently land on a weaker remote node (the
  // remote bind enforces the real constraint; the advertisement must not
  // overpromise).
  double total_cpu = 0.0;
  std::uint64_t total_mem = 0;
  security::SecurityLevel weakest = security::SecurityLevel::kHigh;
  for (sched::NodeState* ns : remote_.NodeStates()) {
    total_cpu += ns->cpu_capacity();
    total_mem += ns->mem_capacity_mb();
    weakest = std::min(weakest, ns->node->security_level());
  }
  virtual_node_ = std::make_unique<continuum::ComputeNode>(
      engine, virtual_id_, continuum::Layer::kFog, "liqo-virtual", weakest,
      total_mem);
  // One server device approximating the remote aggregate (capacity =
  // cores * speedup * ghz; use 1 GHz/1x so cores == cpu units).
  const int cores = std::max(1, static_cast<int>(total_cpu));
  virtual_node_->AddDevice(continuum::Device(
      virtual_id_ + "/aggregate", continuum::DeviceKind::kServerCpu, cores,
      {continuum::OperatingPoint{"aggregate", 1.0, 100.0 * cores, 10.0 * cores,
                                 1.0}}));
  local_.AddNode(virtual_node_.get(), {{"liqo.io/virtual", "true"}});
  SyncCapacity();
}

LiqoPeering::~LiqoPeering() {
  // Cordon the virtual node so a dangling pointer is never scheduled onto;
  // clusters typically outlive peerings only in teardown paths.
  local_.Cordon(virtual_id_, true);
}

void LiqoPeering::SyncCapacity() {
  double remote_free = 0.0;
  for (sched::NodeState* ns : remote_.NodeStates()) {
    if (ns->node->up() && !ns->cordoned()) remote_free += ns->CpuFree();
  }
  if (const sched::NodeState* vs = local_.FindNodeState(virtual_id_)) {
    // Reflect remote usage as local allocation on the virtual node, keeping
    // locally-bound offloads accounted. Goes through the cluster so the
    // scheduler ledger stays single-pathed (the ctor added the node, so the
    // write cannot miss).
    const double advertised = vs->cpu_capacity();
    util::MustOk(local_.SetReflectedCpuAllocation(
        virtual_id_, std::max(0.0, advertised - remote_free)));
  }
}

util::StatusOr<std::string> LiqoPeering::Offload(const sched::PodSpec& pod) {
  sched::PodSpec remote_pod = pod;
  remote_pod.name = "offloaded/" + pod.name;
  auto node = remote_.BindPod(remote_pod);
  if (!node.ok()) {
    // LINT: discard(best-effort cleanup of a pod that never bound)
    (void)remote_.DeletePod(remote_pod.name);
    return node.status();
  }
  offloaded_[pod.name] = *node;
  return node;
}

util::StatusOr<std::string> LiqoPeering::RemoteNodeOf(
    const std::string& pod_name) const {
  const auto it = offloaded_.find(pod_name);
  if (it == offloaded_.end()) {
    return util::Status::NotFound("pod not offloaded: " + pod_name);
  }
  return it->second;
}

util::Status LiqoPeering::Reclaim(const std::string& pod_name) {
  const auto it = offloaded_.find(pod_name);
  if (it == offloaded_.end()) {
    return util::Status::NotFound("pod not offloaded: " + pod_name);
  }
  MYRTUS_RETURN_IF_ERROR(remote_.DeletePod("offloaded/" + pod_name));
  offloaded_.erase(it);
  return util::Status::Ok();
}

}  // namespace myrtus::mirto
