#include "mirto/managers.hpp"

#include <algorithm>
#include <limits>

namespace myrtus::mirto {

std::string_view PlacementStrategyName(PlacementStrategy strategy) {
  switch (strategy) {
    case PlacementStrategy::kStaticKube: return "static-kube";
    case PlacementStrategy::kGreedy: return "greedy";
    case PlacementStrategy::kPso: return "pso";
    case PlacementStrategy::kAco: return "aco";
    case PlacementStrategy::kRandom: return "random";
  }
  return "?";
}

WlManager::WlManager(sched::Cluster& cluster, PlacementStrategy strategy,
                     std::uint64_t seed)
    : cluster_(cluster), strategy_(strategy), rng_(seed, "wl-manager") {}

util::StatusOr<std::map<std::string, std::string>> WlManager::PlanPlacement(
    const std::vector<sched::PodSpec>& pods,
    const std::map<std::string, double>& node_latency_cost_ms,
    const std::vector<std::string>& vetoed_nodes) {
  std::map<std::string, std::string> directives;
  if (strategy_ == PlacementStrategy::kStaticKube) {
    // Baseline: no global planning; Execute() will fall through to the
    // plain scheduler pipeline for every pod.
    return directives;
  }

  // Build the swarm placement problem from cluster state.
  swarm::PlacementProblem problem;
  std::vector<sched::NodeState*> states;
  for (sched::NodeState* ns : cluster_.NodeStates()) {
    if (!ns->node->up() || ns->cordoned()) continue;
    if (std::find(vetoed_nodes.begin(), vetoed_nodes.end(), ns->node->id()) !=
        vetoed_nodes.end()) {
      continue;
    }
    swarm::PlacementNode pn;
    pn.id = ns->node->id();
    pn.cpu_capacity = ns->CpuFree();
    pn.mem_capacity_mb = static_cast<double>(ns->MemFreeMb());
    pn.security_level = static_cast<int>(ns->node->security_level());
    pn.has_accelerator = ns->HasAccelerator();
    double power = 0.0;
    for (const continuum::Device& d : ns->node->devices()) {
      power += d.active_point().power_active_mw;
    }
    pn.power_mw_per_cpu = power / std::max(1e-9, ns->cpu_capacity());
    const auto it = node_latency_cost_ms.find(pn.id);
    pn.latency_to_consumer_ms = it == node_latency_cost_ms.end() ? 10.0 : it->second;
    problem.nodes.push_back(std::move(pn));
    states.push_back(ns);
  }
  if (problem.nodes.empty()) {
    return util::Status::ResourceExhausted("no schedulable nodes");
  }
  for (const sched::PodSpec& pod : pods) {
    swarm::PlacementTask task;
    task.cpu = pod.cpu_request;
    task.mem_mb = static_cast<double>(pod.mem_request_mb);
    task.min_security = static_cast<int>(pod.min_security);
    task.needs_accelerator = pod.needs_accelerator;
    task.traffic_kbps = std::max(1.0, pod.expected_load * 100.0);
    problem.tasks.push_back(std::move(task));
  }

  swarm::PlacementSolution solution;
  switch (strategy_) {
    case PlacementStrategy::kGreedy:
      solution = swarm::SolveGreedy(problem);
      break;
    case PlacementStrategy::kPso:
      solution = swarm::SolvePso(problem, rng_);
      break;
    case PlacementStrategy::kAco:
      solution = swarm::SolveAco(problem, rng_);
      break;
    case PlacementStrategy::kRandom:
      solution = swarm::SolveRandom(problem, rng_);
      break;
    case PlacementStrategy::kStaticKube:
      break;  // unreachable
  }
  for (std::size_t i = 0; i < pods.size(); ++i) {
    const int n = solution.assignment.size() > i ? solution.assignment[i] : -1;
    if (n >= 0 && static_cast<std::size_t>(n) < problem.nodes.size()) {
      directives[pods[i].name] = problem.nodes[static_cast<std::size_t>(n)].id;
    }
  }
  return directives;
}

util::Status WlManager::Execute(
    const std::vector<sched::PodSpec>& pods,
    const std::map<std::string, std::string>& directives) {
  std::string failures;
  for (const sched::PodSpec& pod : pods) {
    const auto it = directives.find(pod.name);
    util::StatusOr<std::string> bound = util::Status::NotFound("no directive");
    if (it != directives.end()) {
      bound = cluster_.BindPodToNode(pod, it->second);
      // Directive unfulfillable (stale capacity view): fall back below.
    }
    if (!bound.ok()) {
      bound = cluster_.BindPodWithPreemption(pod);
    }
    if (!bound.ok()) {
      failures += pod.name + " (" + bound.status().message() + "); ";
    }
  }
  if (!failures.empty()) {
    return util::Status::ResourceExhausted("unplaced pods: " + failures);
  }
  return util::Status::Ok();
}

NodeManager::NodeManager(double up_threshold, double down_threshold)
    : up_threshold_(up_threshold), down_threshold_(down_threshold) {}

std::vector<NodeManager::Decision> NodeManager::PlanNode(
    continuum::ComputeNode& node) {
  std::vector<Decision> decisions;
  for (std::size_t d = 0; d < node.devices().size(); ++d) {
    const continuum::Device& device = node.devices()[d];
    const double util = node.Utilization(d);
    Decision decision;
    decision.node_id = node.id();
    decision.device_index = d;
    decision.operating_point = device.active_point_index();
    if (util > up_threshold_ && device.active_point_index() != 0) {
      decision.operating_point = 0;  // fastest point
      decision.changed = true;
    } else if (util < down_threshold_ &&
               device.active_point_index() + 1 <
                   device.operating_points().size()) {
      decision.operating_point = device.operating_points().size() - 1;  // eco
      decision.changed = true;
    }
    decisions.push_back(decision);
  }
  return decisions;
}

util::Status NodeManager::Execute(continuum::ComputeNode& node,
                                  const Decision& decision) {
  if (!decision.changed) return util::Status::Ok();
  MYRTUS_RETURN_IF_ERROR(node.mutable_device(decision.device_index)
                             .SetOperatingPoint(decision.operating_point));
  ++reconfigurations_;
  return util::Status::Ok();
}

NetworkManager::NetworkManager(const net::Topology& topology)
    : topology_(topology) {}

std::map<std::string, double> NetworkManager::LatencyCostMs(
    const std::string& anchor_host,
    const std::vector<std::string>& node_ids) const {
  std::map<std::string, double> out;
  for (const std::string& node : node_ids) {
    auto route = topology_.FindRoute(anchor_host, node);
    out[node] = route.ok() ? route->propagation.ToMillisF() : 1e9;
  }
  return out;
}

util::StatusOr<std::string> NetworkManager::NearestNode(
    const std::string& anchor_host,
    const std::vector<std::string>& node_ids) const {
  const auto costs = LatencyCostMs(anchor_host, node_ids);
  std::string best;
  double best_ms = std::numeric_limits<double>::infinity();
  for (const auto& [node, ms] : costs) {
    if (ms < best_ms) {
      best_ms = ms;
      best = node;
    }
  }
  if (best.empty() || best_ms >= 1e9) {
    return util::Status::NotFound("no reachable node from " + anchor_host);
  }
  return best;
}

PrivacySecurityManager::PrivacySecurityManager(double veto_threshold)
    : veto_threshold_(veto_threshold) {}

void PrivacySecurityManager::RecordOutcome(const std::string& node_id,
                                           bool success) {
  double& trust = trust_.try_emplace(node_id, 1.0).first->second;
  // Exponential update: failures bite harder than successes heal. Note that
  // 1.0 * 0.95 + 0.05 == 1.0 exactly in double, so a fully trusted node is a
  // fixed point under successes and recovery converges to exactly 1.0.
  const double updated =
      success ? std::min(1.0, trust * 0.95 + 0.05) : trust * 0.7;
  if (updated != trust) {
    trust = updated;
    pending_publish_.insert(node_id);
  }
}

double PrivacySecurityManager::TrustOf(const std::string& node_id) const {
  const auto it = trust_.find(node_id);
  return it == trust_.end() ? 1.0 : it->second;
}

std::vector<std::string> PrivacySecurityManager::VetoedNodes() const {
  std::vector<std::string> out;
  for (const auto& [node, trust] : trust_) {
    if (trust < veto_threshold_) out.push_back(node);
  }
  return out;
}

bool PrivacySecurityManager::Permits(const sched::PodSpec& pod,
                                     const continuum::ComputeNode& node) const {
  return security::Satisfies(node.security_level(), pod.min_security) &&
         TrustOf(node.id()) >= veto_threshold_;
}

void PrivacySecurityManager::PublishTrust(kb::ResourceRegistry& registry) {
  for (auto it = pending_publish_.begin(); it != pending_publish_.end();) {
    auto record = registry.GetNode(*it);
    if (!record.ok()) {
      // Not registered yet (e.g. trust recorded before the first Monitor
      // pass wrote the node record) — keep it queued for the next publish.
      ++it;
      continue;
    }
    kb::NodeRecord updated = *record;
    updated.trust_score = trust_.at(*it);
    registry.PutNode(updated);
    it = pending_publish_.erase(it);
  }
}

}  // namespace myrtus::mirto
