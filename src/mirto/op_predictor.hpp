// Federated operating-point prediction (§IV: "MIRTO agents will use ML-based
// models to estimate the best operating point of a workload … The possibility
// of combining learned models from different agents using FL techniques …
// is currently under consideration"). Each edge agent records
// (utilization, deadline-slack) → did-the-fast-point-pay-off observations;
// agents periodically FedAvg their logistic models; the NodeManager can then
// consult the shared predictor instead of fixed hysteresis thresholds.
#pragma once

#include <vector>

#include "fl/fedavg.hpp"
#include "mirto/managers.hpp"

namespace myrtus::mirto {

/// One agent's private experience buffer + local model.
class OperatingPointLearner {
 public:
  explicit OperatingPointLearner(std::uint64_t seed)
      : model_(2, fl::LinearModel::Link::kLogistic), rng_(seed, "op-learner") {}

  /// Records an observation: at `utilization` with `deadline_slack` (fraction
  /// of the deadline left when the task finished), running fast was (not)
  /// necessary.
  void Observe(double utilization, double deadline_slack, bool fast_needed);

  /// Local SGD pass over the buffer.
  void TrainLocal(int epochs = 2, double learning_rate = 0.3);

  /// P(fast point needed) under the current model.
  [[nodiscard]] double PredictFastNeeded(double utilization,
                                         double deadline_slack) const;

  [[nodiscard]] const fl::Dataset& data() const { return data_; }
  [[nodiscard]] fl::LinearModel& model() { return model_; }
  [[nodiscard]] const fl::LinearModel& model() const { return model_; }

 private:
  fl::LinearModel model_;
  fl::Dataset data_;
  util::Rng rng_;
};

/// Federates a fleet of learners: FedAvg over their private buffers, then
/// pushes the global parameters back into every agent's model.
struct FederationReport {
  double global_loss = 0.0;
  std::uint64_t bytes_exchanged = 0;
  int rounds = 0;
};
FederationReport FederateLearners(std::vector<OperatingPointLearner*> learners,
                                  int rounds, std::uint64_t seed);

/// A NodeManager variant whose up/down decisions come from a learned
/// predictor instead of fixed thresholds. Falls back to hysteresis while the
/// model has seen too little data.
class LearnedNodeManager {
 public:
  LearnedNodeManager(OperatingPointLearner& learner, double deadline_ms)
      : learner_(learner), deadline_ms_(deadline_ms) {}

  /// Plans a device's operating point from predicted need.
  [[nodiscard]] NodeManager::Decision Plan(continuum::ComputeNode& node,
                                           std::size_t device_index,
                                           double recent_slack) const;

  static constexpr std::size_t kMinObservations = 32;

 private:
  OperatingPointLearner& learner_;
  double deadline_ms_;
};

}  // namespace myrtus::mirto
