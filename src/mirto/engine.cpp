#include "mirto/engine.hpp"

#include <cassert>
#include <cmath>
#include <limits>

#include "telemetry/telemetry.hpp"

namespace myrtus::mirto {
namespace {

constexpr std::array<continuum::Layer, 3> kLayers = {
    continuum::Layer::kEdge, continuum::Layer::kFog, continuum::Layer::kCloud};

std::size_t Index(continuum::Layer layer) {
  return static_cast<std::size_t>(layer);
}

}  // namespace

std::string MirtoEngine::AgentHost(continuum::Layer layer) {
  return "mirto-" + std::string(continuum::LayerName(layer));
}

MirtoEngine::MirtoEngine(net::Network& network,
                         continuum::Infrastructure& infra, EngineConfig config)
    : network_(network),
      infra_(infra),
      config_(std::move(config)),
      auth_(util::BytesOf(config_.auth_secret)) {
  for (const continuum::Layer layer : kLayers) {
    LayerSlice& slice = layers_[Index(layer)];
    slice.cluster =
        std::make_unique<sched::Cluster>(network_.engine(), sched::Scheduler::Default());
    for (continuum::ComputeNode* node : infra_.NodesInLayer(layer)) {
      slice.cluster->AddNode(node);
    }
    slice.store = std::make_unique<kb::Store>();

    AgentConfig agent_config;
    agent_config.host = AgentHost(layer);
    agent_config.mape_period = config_.mape_period;
    agent_config.strategy = config_.strategy;
    agent_config.seed = config_.seed + Index(layer);
    agent_config.gateway_anchor = infra_.DefaultGateway();
    slice.agent = std::make_unique<MirtoAgent>(
        network_, *slice.cluster, infra_, *slice.store,
        AuthModule(util::BytesOf(config_.auth_secret)), agent_config);

    // Place the agent host near its layer in the topology.
    const std::string attach_point =
        layer == continuum::Layer::kEdge
            ? infra_.DefaultGateway()
            : (layer == continuum::Layer::kFog ? infra_.DefaultGateway()
                                               : std::string("cloud-0"));
    if (!attach_point.empty()) {
      network_.topology().AddBidirectional(AgentHost(layer), attach_point,
                                           sim::SimTime::Micros(200), 1e9);
    }
  }
}

void MirtoEngine::Start() {
  for (const continuum::Layer layer : kLayers) {
    LayerSlice& slice = layers_[Index(layer)];
    slice.agent->Start();
    slice.cluster->StartReconcileLoop(config_.mape_period * 2);

    network_.RegisterRpc(
        AgentHost(layer), "mirto.bid",
        [this, layer](const net::HostId&, const util::Json& req)
            -> util::StatusOr<util::Json> {
          telemetry::ScopedSpan span("mirto.compute_bid", "mirto");
          span.SetAttribute("layer", std::string(continuum::LayerName(layer)));
          const sched::PodSpec pod = sched::PodSpec::FromJson(req);
          auto bid = ComputeBid(layer, pod);
          if (!bid.ok()) return bid.status();
          ++negotiation_.bids_received;
          if (telemetry::Enabled()) {
            span.SetAttribute("cost", std::to_string(*bid));
            telemetry::Global().metrics.Add("myrtus_mirto_bids_total");
          }
          return util::Json::MakeObject().Set("cost", *bid);
        });
    network_.RegisterRpc(
        AgentHost(layer), "mirto.award",
        [this, layer](const net::HostId&, const util::Json& req)
            -> util::StatusOr<util::Json> {
          const sched::PodSpec pod = sched::PodSpec::FromJson(req);
          auto node = layers_[Index(layer)].cluster->BindPodWithPreemption(pod);
          if (!node.ok()) {
            // LINT: discard(best-effort cleanup of a pod that never bound)
            (void)layers_[Index(layer)].cluster->DeletePod(pod.name);
            return node.status();
          }
          ++negotiation_.awards;
          if (telemetry::Enabled()) {
            telemetry::Global().metrics.Add("myrtus_mirto_awards_total");
          }
          layers_[Index(layer)].agent->registry().PutWorkload(
              pod.name, util::Json::MakeObject()
                            .Set("node", *node)
                            .Set("layer", std::string(continuum::LayerName(layer))));
          return util::Json::MakeObject().Set("node", *node);
        });
  }
}

void MirtoEngine::Stop() {
  for (const continuum::Layer layer : kLayers) {
    layers_[Index(layer)].agent->Stop();
    layers_[Index(layer)].cluster->StopReconcileLoop();
  }
}

MirtoAgent& MirtoEngine::agent(continuum::Layer layer) {
  return *layers_[Index(layer)].agent;
}

sched::Cluster& MirtoEngine::cluster(continuum::Layer layer) {
  return *layers_[Index(layer)].cluster;
}

kb::Store& MirtoEngine::kb(continuum::Layer layer) {
  return *layers_[Index(layer)].store;
}

std::size_t MirtoEngine::TotalRunningPods() {
  std::size_t total = 0;
  for (const continuum::Layer layer : kLayers) {
    total += layers_[Index(layer)].cluster->RunningPods();
  }
  return total;
}

double MirtoEngine::TotalEnergyMj() const {
  // Maintained incrementally by the ChangeTracker from per-task completion
  // deltas — O(1) instead of a fleet walk per call.
  const double total = infra_.change_tracker().TotalEnergyMj(infra_.nodes);
#ifndef NDEBUG
  double walk = 0.0;
  for (const auto& node : infra_.nodes) walk += node->total_energy_mj();
  assert(std::fabs(total - walk) <=
         1e-6 * std::max(1.0, std::fabs(walk)));
#endif
  return total;
}

util::StatusOr<double> MirtoEngine::ComputeBid(continuum::Layer layer,
                                               const sched::PodSpec& pod) {
  LayerSlice& slice = layers_[Index(layer)];
  // Dry-run the scheduler: feasibility plus the node it would pick. Goes
  // through the cluster's indexed path (no state changes).
  auto result = slice.cluster->DryRunSchedule(pod);
  if (!result.ok()) {
    return util::Status::NotFound("no capacity in layer " +
                                  std::string(continuum::LayerName(layer)));
  }
  const sched::NodeState* node = slice.cluster->FindNodeState(result->node_id);
  double power_per_cpu = 0.0;
  if (node != nullptr && node->cpu_capacity() > 0) {
    double power = 0.0;
    for (const continuum::Device& d : node->node->devices()) {
      power += d.active_point().power_active_mw;
    }
    power_per_cpu = power / node->cpu_capacity();
  }
  const double load = node != nullptr && node->cpu_capacity() > 0
                          ? node->cpu_allocated() / node->cpu_capacity()
                          : 1.0;
  auto route = network_.topology().FindRoute(infra_.DefaultGateway(),
                                             result->node_id);
  const double latency_ms = route.ok() ? route->propagation.ToMillisF() : 50.0;
  return config_.bid_energy_weight * pod.cpu_request * power_per_cpu * 1e-3 +
         config_.bid_latency_weight * latency_ms +
         config_.bid_load_weight * load;
}

void MirtoEngine::NegotiatePod(
    std::shared_ptr<std::vector<sched::PodSpec>> pods, std::size_t index,
    std::shared_ptr<int> failures, std::function<void(util::Status)> done) {
  if (index >= pods->size()) {
    if (*failures > 0) {
      done(util::Status::ResourceExhausted(std::to_string(*failures) +
                                           " pods found no bidder"));
    } else {
      done(util::Status::Ok());
    }
    return;
  }
  const sched::PodSpec& pod = (*pods)[index];
  ++negotiation_.announcements;

  struct BidState {
    int outstanding = 3;
    double best_cost = std::numeric_limits<double>::infinity();
    int best_layer = -1;
    // Root span of this pod's negotiation; every bid/award RPC hangs off it.
    telemetry::SpanContext span;
    std::int64_t started_ns = 0;
  };
  auto state = std::make_shared<BidState>();
  const util::Json request = pod.ToJson();

  if (telemetry::Enabled()) {
    auto& tel = telemetry::Global();
    state->started_ns = network_.engine().Now().ns;
    state->span = tel.tracer.StartSpan("negotiate.pod", "mirto",
                                       tel.tracer.current(), state->started_ns);
    tel.tracer.SetAttribute(state->span, "pod", pod.name);
    tel.metrics.Add("myrtus_mirto_announcements_total");
  }

  // Ends the negotiation root span and records the per-pod placement latency.
  const auto finish_negotiation = [this, state](const std::string& result,
                                                const std::string& winner) {
    if (!state->span.valid()) return;
    auto& tel = telemetry::Global();
    tel.tracer.SetAttribute(state->span, "result", result);
    if (!winner.empty()) tel.tracer.SetAttribute(state->span, "winner", winner);
    tel.tracer.EndSpan(state->span, network_.engine().Now().ns);
    tel.metrics.Observe(
        "myrtus_mirto_negotiation_latency_ms",
        static_cast<double>(network_.engine().Now().ns - state->started_ns) * 1e-6);
    tel.metrics.Add("myrtus_mirto_negotiations_total", 1.0, {{"result", result}});
  };

  const std::string origin = AgentHost(continuum::Layer::kEdge);
  // Announce: the three bid calls are issued under the negotiation span so
  // their client spans become its children.
  telemetry::ContextGuard announce_guard(telemetry::Global().tracer, state->span);
  for (const continuum::Layer layer : kLayers) {
    network_.CallWithRetry(
        origin, AgentHost(layer), "mirto.bid", request,
        [this, state, pods, index, failures, done, layer,
         finish_negotiation](util::StatusOr<util::Json> reply) mutable {
          if (reply.ok()) {
            const double cost = reply->at("cost").as_double();
            if (cost < state->best_cost) {
              state->best_cost = cost;
              state->best_layer = static_cast<int>(layer);
            }
          }
          if (--state->outstanding > 0) return;
          // All bids in: award or record failure, then move to the next pod.
          if (state->best_layer < 0) {
            ++*failures;
            ++negotiation_.failed_pods;
            finish_negotiation("no-bidder", "");
            NegotiatePod(pods, index + 1, failures, done);
            return;
          }
          const auto winner = static_cast<continuum::Layer>(state->best_layer);
          // Completion callbacks run without an implicit context; restore the
          // negotiation span so the award call links into the same tree.
          telemetry::ContextGuard award_guard(telemetry::Global().tracer,
                                              state->span);
          network_.CallWithRetry(
              AgentHost(continuum::Layer::kEdge), AgentHost(winner),
              "mirto.award", (*pods)[index].ToJson(),
              [this, pods, index, failures, done, winner,
               finish_negotiation](util::StatusOr<util::Json> award) mutable {
                if (!award.ok()) {
                  ++*failures;
                  ++negotiation_.failed_pods;
                  finish_negotiation("award-failed", "");
                } else {
                  finish_negotiation(
                      "placed", std::string(continuum::LayerName(winner)));
                }
                NegotiatePod(pods, index + 1, failures, done);
              },
              config_.negotiation_retry);
        },
        config_.negotiation_retry);
  }
}

void MirtoEngine::DeployNegotiated(const tosca::CsarPackage& package,
                                   std::function<void(util::Status)> done) {
  auto tpl = package.EntryTemplate();
  if (!tpl.ok()) {
    done(tpl.status());
    return;
  }
  auto pods = tosca::LowerToPods(*tpl);
  if (!pods.ok()) {
    done(pods.status());
    return;
  }
  auto shared_pods =
      std::make_shared<std::vector<sched::PodSpec>>(std::move(*pods));
  NegotiatePod(shared_pods, 0, std::make_shared<int>(0), std::move(done));
}

}  // namespace myrtus::mirto
