// The two MYRTUS assessment scenarios (§I): Smart Mobility and Virtual
// Telerehabilitation. Each scenario provides its dataflow application, threat
// model, and a workload generator; the RequestPipeline drives individual
// requests end-to-end across the continuum (network hop to each stage's
// node, compute on the node's best device), producing the KPIs the paper's
// orchestration loop optimizes (latency, deadline violations, energy).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "dpe/adt.hpp"
#include "dpe/pipeline.hpp"
#include "net/transport.hpp"
#include "sched/controller.hpp"
#include "util/stats.hpp"

namespace myrtus::usecases {

/// One stage of a deployed application as executed at runtime.
struct Stage {
  std::string pod_name;               // binding looked up in the cluster
  continuum::TaskDemand demand;       // per-request compute
  std::size_t output_bytes = 1024;    // shipped to the next stage
  security::SecurityLevel min_security = security::SecurityLevel::kLow;
  std::string layer_affinity;         // placement policy ("" = anywhere)
  double cpu_request = 0.5;
  std::uint64_t mem_request_mb = 64;
};

/// A scenario definition.
struct Scenario {
  std::string name;
  dpe::DpeInput dpe_input;            // application model for the DPE
  std::vector<Stage> stages;          // runtime request pipeline
  std::string source_host;            // where requests originate (sensor)
  double arrival_rate_hz = 20.0;      // Poisson arrivals
  double deadline_ms = 100.0;
  std::unique_ptr<dpe::AdtNode> threat_model;
};

/// Smart Mobility (TNO + CRF): vehicle perception pipeline — sensor fusion,
/// object detection (accelerable), trajectory planning, V2X uplink. Tight
/// deadlines, bursty arrivals.
Scenario SmartMobilityScenario();

/// Virtual Telerehabilitation (UNICA + REPLY): patient pose estimation
/// (accelerable), exercise scoring, realtime feedback, session archive.
/// Privacy-pinned stages, moderate deadlines.
Scenario TelerehabScenario();

/// KPIs accumulated over a run.
struct ScenarioKpis {
  util::Samples latency_ms;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;       // stage unplaced / node down
  std::uint64_t violations = 0;   // completed but past deadline
  double compute_energy_mj = 0.0;

  [[nodiscard]] double ViolationRate() const {
    const double total = static_cast<double>(completed + failed);
    return total == 0 ? 0.0
                      : static_cast<double>(violations + failed) / total;
  }
};

/// Executes requests of a scenario against a deployed application: each
/// request walks the stage chain; stage k runs on the node hosting its pod
/// (per the cluster binding), paying a network transfer from the previous
/// location first.
class RequestPipeline {
 public:
  RequestPipeline(net::Network& network, continuum::Infrastructure& infra,
                  sched::Cluster& cluster, const Scenario& scenario);

  /// Launches one request now; the KPIs absorb its outcome on completion.
  void LaunchRequest();
  /// Schedules a Poisson request stream until `until`.
  void StartStream(sim::SimTime until, std::uint64_t seed);

  [[nodiscard]] const ScenarioKpis& kpis() const { return kpis_; }
  ScenarioKpis& mutable_kpis() { return kpis_; }

 private:
  void RunStage(std::size_t stage_index, std::string at_host,
                sim::SimTime started, double energy_acc);
  void Finish(sim::SimTime started, double energy, bool ok);
  void EnsureRelay(const std::string& host);
  [[nodiscard]] std::string RelayMethod() const;

  net::Network& network_;
  continuum::Infrastructure& infra_;
  sched::Cluster& cluster_;
  const Scenario& scenario_;
  ScenarioKpis kpis_;
  std::map<std::uint64_t, std::function<void()>> pending_;
  std::set<std::string> relay_hosts_;
  std::uint64_t next_token_ = 1;
};

/// Deploys a scenario's pods onto a cluster directly (scheduler pipeline),
/// mapping DPE partitions to pod specs. Returns the pod names in stage order
/// and fills `scenario.stages` bindings.
util::Status DeployScenario(Scenario& scenario, sched::Cluster& cluster,
                            std::uint64_t seed);

}  // namespace myrtus::usecases
