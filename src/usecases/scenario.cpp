#include "usecases/scenario.hpp"

#include <algorithm>

namespace myrtus::usecases {
namespace {

std::unique_ptr<dpe::AdtNode> MobilityThreats() {
  std::vector<std::unique_ptr<dpe::AdtNode>> spoof_children;
  spoof_children.push_back(dpe::AdtNode::Leaf("intercept_v2x", 0.6));
  spoof_children.push_back(dpe::AdtNode::Leaf("forge_messages", 0.5));
  auto spoof = dpe::AdtNode::And("spoof_traffic_data", std::move(spoof_children));
  spoof->AddDefence({"sign_v2x", 1.0, 0.15, "security-level:medium"});

  auto jam = dpe::AdtNode::Leaf("jam_uplink", 0.2);
  jam->AddDefence({"frequency_hopping", 1.5, 0.4, "enable:channel-agility"});

  std::vector<std::unique_ptr<dpe::AdtNode>> root_children;
  root_children.push_back(std::move(spoof));
  root_children.push_back(std::move(jam));
  return dpe::AdtNode::Or("disrupt_mobility", std::move(root_children));
}

std::unique_ptr<dpe::AdtNode> TelerehabThreats() {
  std::vector<std::unique_ptr<dpe::AdtNode>> leak_children;
  leak_children.push_back(dpe::AdtNode::Leaf("sniff_session", 0.7));
  leak_children.push_back(dpe::AdtNode::Leaf("break_weak_crypto", 0.6));
  auto leak = dpe::AdtNode::And("exfiltrate_patient_data", std::move(leak_children));
  leak->AddDefence({"pq_channel", 2.0, 0.1, "security-level:high"});

  auto insider = dpe::AdtNode::Leaf("insider_access", 0.15);
  insider->AddDefence({"audit_log", 0.5, 0.5, "enable:audit-trail"});

  std::vector<std::unique_ptr<dpe::AdtNode>> root_children;
  root_children.push_back(std::move(leak));
  root_children.push_back(std::move(insider));
  return dpe::AdtNode::Or("steal_health_data", std::move(root_children));
}

continuum::TaskDemand Demand(std::uint64_t cycles, std::uint64_t in_bytes,
                             std::uint64_t out_bytes, bool accelerable,
                             double parallel) {
  continuum::TaskDemand d;
  d.cycles = cycles;
  d.bytes_in = in_bytes;
  d.bytes_out = out_bytes;
  d.accelerable = accelerable;
  d.parallel_fraction = parallel;
  return d;
}

}  // namespace

Scenario SmartMobilityScenario() {
  Scenario s;
  s.name = "smart-mobility";
  s.source_host = "edge-0";  // vehicle-side sensor node
  s.arrival_rate_hz = 30.0;  // camera/lidar frame rate
  s.deadline_ms = 150.0;     // perception-to-plan budget

  // DPE application model.
  s.dpe_input.app_name = s.name;
  util::MustOk(s.dpe_input.graph.AddActor({"fuse_sensors", 4'000'000, 32768, false, 0.4}));
  util::MustOk(s.dpe_input.graph.AddActor({"detect_objects", 60'000'000, 1 << 20, true, 0.9}));
  util::MustOk(s.dpe_input.graph.AddActor({"plan_trajectory", 12'000'000, 65536, false, 0.3}));
  util::MustOk(s.dpe_input.graph.AddActor({"v2x_uplink", 1'000'000, 8192, false, 0.0}));
  util::MustOk(s.dpe_input.graph.AddChannel({"fuse_sensors", "detect_objects", 1, 1, 262144}));
  util::MustOk(s.dpe_input.graph.AddChannel({"detect_objects", "plan_trajectory", 1, 1, 16384}));
  util::MustOk(s.dpe_input.graph.AddChannel({"detect_objects", "v2x_uplink", 1, 1, 4096}));
  s.dpe_input.deadline_ms = s.deadline_ms;
  s.dpe_input.security_level = "low";
  s.threat_model = MobilityThreats();
  s.dpe_input.threat_model = s.threat_model.get();

  // Runtime stages. Perception must sit at the edge (latency); planning can
  // ride fog; the uplink archive is elastic.
  Stage fuse{"fuse", Demand(4'000'000, 131072, 65536, false, 0.4), 65536,
             security::SecurityLevel::kLow, "edge", 0.4, 64};
  Stage detect{"detect", Demand(60'000'000, 65536, 16384, true, 0.9), 16384,
               security::SecurityLevel::kLow, "edge", 1.2, 256};
  Stage plan{"plan", Demand(12'000'000, 16384, 4096, false, 0.3), 4096,
             security::SecurityLevel::kMedium, "", 0.6, 128};
  Stage uplink{"uplink", Demand(1'000'000, 4096, 1024, false, 0.0), 1024,
               security::SecurityLevel::kMedium, "", 0.2, 32};
  s.stages = {fuse, detect, plan, uplink};
  return s;
}

Scenario TelerehabScenario() {
  Scenario s;
  s.name = "telerehab";
  s.source_host = "edge-1";  // patient-side camera node
  s.arrival_rate_hz = 15.0;
  s.deadline_ms = 250.0;  // perceptible-but-tolerable feedback latency

  s.dpe_input.app_name = s.name;
  util::MustOk(s.dpe_input.graph.AddActor({"pose_estimation", 45'000'000, 1 << 19, true, 0.85}));
  util::MustOk(s.dpe_input.graph.AddActor({"exercise_scoring", 8'000'000, 65536, false, 0.2}));
  util::MustOk(s.dpe_input.graph.AddActor({"feedback", 1'500'000, 4096, false, 0.0}));
  util::MustOk(s.dpe_input.graph.AddActor({"session_archive", 3'000'000, 1 << 22, false, 0.1}));
  util::MustOk(s.dpe_input.graph.AddChannel({"pose_estimation", "exercise_scoring", 1, 1, 32768}));
  util::MustOk(s.dpe_input.graph.AddChannel({"exercise_scoring", "feedback", 1, 1, 512}));
  util::MustOk(s.dpe_input.graph.AddChannel({"exercise_scoring", "session_archive", 1, 1, 16384}));
  s.dpe_input.deadline_ms = s.deadline_ms;
  s.dpe_input.security_level = "medium";  // health data floor
  s.threat_model = TelerehabThreats();
  s.dpe_input.threat_model = s.threat_model.get();

  Stage pose{"pose", Demand(45'000'000, 131072, 32768, true, 0.85), 32768,
             security::SecurityLevel::kLow, "edge", 1.0, 256};
  Stage score{"score", Demand(8'000'000, 32768, 512, false, 0.2), 512,
              security::SecurityLevel::kMedium, "", 0.5, 128};
  Stage feedback{"feedback", Demand(1'500'000, 512, 256, false, 0.0), 256,
                 security::SecurityLevel::kLow, "edge", 0.2, 32};
  Stage archive{"archive", Demand(3'000'000, 16384, 0, false, 0.1), 0,
                security::SecurityLevel::kHigh, "", 0.3, 512};
  s.stages = {pose, score, feedback, archive};
  return s;
}

util::Status DeployScenario(Scenario& scenario, sched::Cluster& cluster,
                            std::uint64_t seed) {
  (void)seed;
  std::string failures;
  for (const Stage& stage : scenario.stages) {
    sched::PodSpec pod;
    pod.name = scenario.name + "/" + stage.pod_name;
    pod.cpu_request = stage.cpu_request;
    pod.mem_request_mb = stage.mem_request_mb;
    pod.min_security = stage.min_security;
    pod.needs_accelerator = stage.demand.accelerable;
    pod.layer_affinity = stage.layer_affinity;
    auto bound = cluster.BindPod(pod);
    if (!bound.ok()) {
      failures += pod.name + ": " + bound.status().message() + "; ";
    }
  }
  if (!failures.empty()) {
    return util::Status::ResourceExhausted("scenario deploy failed: " + failures);
  }
  return util::Status::Ok();
}

RequestPipeline::RequestPipeline(net::Network& network,
                                 continuum::Infrastructure& infra,
                                 sched::Cluster& cluster,
                                 const Scenario& scenario)
    : network_(network), infra_(infra), cluster_(cluster), scenario_(scenario) {}

void RequestPipeline::LaunchRequest() {
  RunStage(0, scenario_.source_host, network_.engine().Now(), 0.0);
}

void RequestPipeline::StartStream(sim::SimTime until, std::uint64_t seed) {
  auto rng = std::make_shared<util::Rng>(seed, scenario_.name);
  // Self-rescheduling Poisson arrivals.
  auto schedule_next = std::make_shared<std::function<void()>>();
  *schedule_next = [this, until, rng, schedule_next] {
    if (network_.engine().Now() >= until) return;
    const double gap_s = rng->NextExponential(scenario_.arrival_rate_hz);
    network_.engine().ScheduleAfter(sim::SimTime::FromSeconds(gap_s),
                                    [this, schedule_next] {
                                      LaunchRequest();
                                      (*schedule_next)();
                                    });
  };
  (*schedule_next)();
}

void RequestPipeline::RunStage(std::size_t stage_index, std::string at_host,
                               sim::SimTime started, double energy_acc) {
  if (stage_index >= scenario_.stages.size()) {
    Finish(started, energy_acc, true);
    return;
  }
  const Stage& stage = scenario_.stages[stage_index];
  const sched::PodView pod =
      cluster_.FindPod(scenario_.name + "/" + stage.pod_name);
  if (!pod || pod.phase() != sched::PodPhase::kRunning) {
    Finish(started, energy_acc, false);
    return;
  }
  continuum::ComputeNode* node = infra_.FindNode(pod.node_id());
  if (node == nullptr || !node->up()) {
    Finish(started, energy_acc, false);
    return;
  }
  const std::string target = pod.node_id();

  const auto compute = [this, stage_index, target, started, energy_acc,
                        node]() {
    const Stage& st = scenario_.stages[stage_index];
    node->Submit(st.demand, [this, stage_index, target, started,
                             energy_acc](const continuum::TaskReport& report) {
      RunStage(stage_index + 1, target, started,
               energy_acc + report.energy_mj);
    });
  };

  if (at_host == target) {
    compute();
    return;
  }
  // Ship the stage input over the network; the shared relay endpoint on the
  // target host resumes the pipeline on arrival.
  EnsureRelay(target);
  const std::uint64_t token = next_token_++;
  pending_[token] = compute;
  network_.Call(
      at_host, target, RelayMethod(),
      util::Json::MakeObject().Set("token", token),
      [this, started, energy_acc, token](util::StatusOr<util::Json> reply) {
        if (!reply.ok()) {
          pending_.erase(token);  // lost transfer: the request dies here
          Finish(started, energy_acc, false);
        }
      },
      sim::SimTime::Seconds(10), net::Protocol::kCoap,
      std::max<std::size_t>(stage.demand.bytes_in, 64));
}

std::string RequestPipeline::RelayMethod() const {
  return "pipeline.continue/" + scenario_.name;
}

void RequestPipeline::EnsureRelay(const std::string& host) {
  if (relay_hosts_.count(host) > 0) return;
  relay_hosts_.insert(host);
  network_.RegisterRpc(host, RelayMethod(),
                       [this](const net::HostId&, const util::Json& req)
                           -> util::StatusOr<util::Json> {
                         const auto token =
                             static_cast<std::uint64_t>(req.at("token").as_int());
                         const auto it = pending_.find(token);
                         if (it == pending_.end()) {
                           return util::Status::NotFound("stale pipeline token");
                         }
                         auto continuation = std::move(it->second);
                         pending_.erase(it);
                         continuation();
                         return util::Json(true);
                       });
}

void RequestPipeline::Finish(sim::SimTime started, double energy, bool ok) {
  if (!ok) {
    ++kpis_.failed;
    return;
  }
  ++kpis_.completed;
  const double latency_ms = (network_.engine().Now() - started).ToMillisF();
  kpis_.latency_ms.Add(latency_ms);
  kpis_.compute_energy_mj += energy;
  if (latency_ms > scenario_.deadline_ms) ++kpis_.violations;
}

}  // namespace myrtus::usecases
