#include "tosca/yaml.hpp"

#include <cctype>
#include <charconv>
#include <vector>

namespace myrtus::tosca {
namespace {

using util::Json;
using util::Status;
using util::StatusOr;

struct Line {
  int indent = 0;
  std::string content;  // trimmed, comment-stripped
  std::size_t number = 0;
};

/// Strips a trailing comment that is not inside quotes.
std::string StripComment(std::string_view s) {
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (c == '#' && !in_single && !in_double &&
             (i == 0 || s[i - 1] == ' ' || s[i - 1] == '\t')) {
      return std::string(s.substr(0, i));
    }
  }
  return std::string(s);
}

std::string Trim(std::string s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t' || s[b] == '\r')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t' || s[e - 1] == '\r')) --e;
  return s.substr(b, e - b);
}

std::vector<Line> SplitLines(std::string_view text) {
  std::vector<Line> lines;
  std::size_t start = 0;
  std::size_t lineno = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    std::string_view raw = text.substr(start, end - start);
    ++lineno;
    int indent = 0;
    while (static_cast<std::size_t>(indent) < raw.size() && raw[static_cast<std::size_t>(indent)] == ' ') ++indent;
    std::string content = Trim(StripComment(raw.substr(static_cast<std::size_t>(indent))));
    if (!content.empty() && content != "---") {
      lines.push_back(Line{indent, std::move(content), lineno});
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return lines;
}

/// Typed scalar conversion.
Json ParseScalar(std::string_view s) {
  if (s.empty() || s == "~" || s == "null") return Json(nullptr);
  if (s == "true" || s == "True") return Json(true);
  if (s == "false" || s == "False") return Json(false);
  if ((s.front() == '"' && s.back() == '"' && s.size() >= 2) ||
      (s.front() == '\'' && s.back() == '\'' && s.size() >= 2)) {
    return Json(std::string(s.substr(1, s.size() - 2)));
  }
  // Try integer.
  {
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc() && p == s.data() + s.size()) return Json(v);
  }
  // Try float.
  {
    double v = 0;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
    if (ec == std::errc() && p == s.data() + s.size()) return Json(v);
  }
  return Json(std::string(s));
}

/// Flow-style [..] / {..} values are JSON-compatible enough after quoting
/// bare words; we parse them with a tiny recursive routine.
StatusOr<Json> ParseFlow(std::string_view s, std::size_t& pos);

StatusOr<Json> ParseFlowValue(std::string_view s, std::size_t& pos) {
  while (pos < s.size() && s[pos] == ' ') ++pos;
  if (pos >= s.size()) return Status::InvalidArgument("flow: unexpected end");
  if (s[pos] == '[' || s[pos] == '{') return ParseFlow(s, pos);
  // Scalar up to , ] } at this nesting level.
  if (s[pos] == '"' || s[pos] == '\'') {
    const char q = s[pos];
    const std::size_t start = ++pos;
    while (pos < s.size() && s[pos] != q) ++pos;
    if (pos >= s.size()) return Status::InvalidArgument("flow: unterminated quote");
    const std::string_view inner = s.substr(start, pos - start);
    ++pos;
    return Json(std::string(inner));
  }
  const std::size_t start = pos;
  while (pos < s.size() && s[pos] != ',' && s[pos] != ']' && s[pos] != '}' &&
         s[pos] != ':') {
    ++pos;
  }
  return ParseScalar(Trim(std::string(s.substr(start, pos - start))));
}

StatusOr<Json> ParseFlow(std::string_view s, std::size_t& pos) {
  const char open = s[pos];
  const char close = open == '[' ? ']' : '}';
  ++pos;
  Json result = open == '[' ? Json::MakeArray() : Json::MakeObject();
  while (true) {
    while (pos < s.size() && (s[pos] == ' ' || s[pos] == ',')) ++pos;
    if (pos >= s.size()) return Status::InvalidArgument("flow: unterminated");
    if (s[pos] == close) {
      ++pos;
      return result;
    }
    if (open == '[') {
      auto v = ParseFlowValue(s, pos);
      if (!v.ok()) return v;
      result.Append(std::move(v).value());
    } else {
      auto k = ParseFlowValue(s, pos);
      if (!k.ok()) return k;
      while (pos < s.size() && s[pos] == ' ') ++pos;
      if (pos >= s.size() || s[pos] != ':') {
        return Status::InvalidArgument("flow map: expected ':'");
      }
      ++pos;
      auto v = ParseFlowValue(s, pos);
      if (!v.ok()) return v;
      std::string key = k->is_string() ? k->as_string() : k->Dump();
      result.Set(std::move(key), std::move(v).value());
    }
  }
}

StatusOr<Json> ParseValueText(const std::string& text) {
  const std::string t = Trim(text);
  if (!t.empty() && (t[0] == '[' || t[0] == '{')) {
    std::size_t pos = 0;
    auto v = ParseFlow(t, pos);
    if (!v.ok()) return v;
    while (pos < t.size() && t[pos] == ' ') ++pos;
    if (pos != t.size()) return Status::InvalidArgument("flow: trailing data");
    return v;
  }
  return ParseScalar(t);
}

/// Finds the first ':' that terminates a mapping key (not inside quotes or
/// flow brackets, and followed by space/EOL).
std::size_t FindKeySeparator(const std::string& s) {
  int depth = 0;
  bool in_single = false;
  bool in_double = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (c == '\'' && !in_double) in_single = !in_single;
    else if (c == '"' && !in_single) in_double = !in_double;
    else if (!in_single && !in_double) {
      if (c == '[' || c == '{') ++depth;
      else if (c == ']' || c == '}') --depth;
      else if (c == ':' && depth == 0 &&
               (i + 1 == s.size() || s[i + 1] == ' ')) {
        return i;
      }
    }
  }
  return std::string::npos;
}

class BlockParser {
 public:
  explicit BlockParser(std::vector<Line> lines) : lines_(std::move(lines)) {}

  StatusOr<Json> Run() {
    if (lines_.empty()) return Json(nullptr);
    auto v = ParseBlock(lines_[0].indent);
    if (!v.ok()) return v;
    if (pos_ != lines_.size()) {
      return Err("inconsistent indentation");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) const {
    const std::size_t line =
        pos_ < lines_.size() ? lines_[pos_].number : lines_.back().number;
    return Status::InvalidArgument("yaml line " + std::to_string(line) + ": " +
                                   msg);
  }

  StatusOr<Json> ParseBlock(int indent) {
    if (pos_ >= lines_.size()) return Json(nullptr);
    if (lines_[pos_].content[0] == '-' &&
        (lines_[pos_].content.size() == 1 || lines_[pos_].content[1] == ' ')) {
      return ParseSequence(indent);
    }
    return ParseMapping(indent);
  }

  StatusOr<Json> ParseSequence(int indent) {
    Json arr = Json::MakeArray();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           lines_[pos_].content[0] == '-') {
      Line& line = lines_[pos_];
      std::string rest = Trim(line.content.substr(1));
      if (rest.empty()) {
        ++pos_;
        // Nested block belongs to this item.
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          auto v = ParseBlock(lines_[pos_].indent);
          if (!v.ok()) return v;
          arr.Append(std::move(v).value());
        } else {
          arr.Append(Json(nullptr));
        }
      } else if (FindKeySeparator(rest) != std::string::npos) {
        // "- key: value" starts an inline mapping item. Rewrite the line as
        // a mapping at a deeper indent and parse the whole item as a map.
        line.indent = indent + 2;
        line.content = rest;
        auto v = ParseMapping(indent + 2);
        if (!v.ok()) return v;
        arr.Append(std::move(v).value());
      } else {
        auto v = ParseValueText(rest);
        if (!v.ok()) return v;
        arr.Append(std::move(v).value());
        ++pos_;
      }
    }
    return arr;
  }

  StatusOr<Json> ParseMapping(int indent) {
    Json obj = Json::MakeObject();
    while (pos_ < lines_.size() && lines_[pos_].indent == indent &&
           !(lines_[pos_].content[0] == '-' &&
             (lines_[pos_].content.size() == 1 ||
              lines_[pos_].content[1] == ' '))) {
      const Line& line = lines_[pos_];
      const std::size_t sep = FindKeySeparator(line.content);
      if (sep == std::string::npos) {
        return Err("expected 'key: value'");
      }
      std::string key = Trim(line.content.substr(0, sep));
      if (key.size() >= 2 &&
          ((key.front() == '"' && key.back() == '"') ||
           (key.front() == '\'' && key.back() == '\''))) {
        key = key.substr(1, key.size() - 2);
      }
      std::string rest = Trim(line.content.substr(sep + 1));
      ++pos_;
      if (rest.empty()) {
        // Value is a nested block (or null).
        if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
          auto v = ParseBlock(lines_[pos_].indent);
          if (!v.ok()) return v;
          obj.Set(std::move(key), std::move(v).value());
        } else if (pos_ < lines_.size() && lines_[pos_].indent == indent &&
                   lines_[pos_].content[0] == '-' &&
                   (lines_[pos_].content.size() == 1 ||
                    lines_[pos_].content[1] == ' ')) {
          // Sequence at the same indent as the key (common YAML style).
          auto v = ParseSequence(indent);
          if (!v.ok()) return v;
          obj.Set(std::move(key), std::move(v).value());
        } else {
          obj.Set(std::move(key), Json(nullptr));
        }
      } else {
        auto v = ParseValueText(rest);
        if (!v.ok()) return v;
        obj.Set(std::move(key), std::move(v).value());
      }
    }
    if (pos_ < lines_.size() && lines_[pos_].indent > indent) {
      return Err("unexpected deeper indentation");
    }
    return obj;
  }

  std::vector<Line> lines_;
  std::size_t pos_ = 0;
};

bool NeedsQuoting(const std::string& s) {
  if (s.empty() || s == "null" || s == "true" || s == "false" || s == "~") return true;
  // Numbers-looking strings must be quoted to round-trip as strings.
  {
    double d;
    const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), d);
    if (ec == std::errc() && p == s.data() + s.size()) return true;
  }
  for (const char c : s) {
    if (c == ':' || c == '#' || c == '\n' || c == '\'' || c == '"' ||
        c == '[' || c == ']' || c == '{' || c == '}' || c == ',') {
      return true;
    }
  }
  return s.front() == ' ' || s.back() == ' ' || s.front() == '-';
}

void EmitScalar(const Json& v, std::string& out) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_string()) {
    const std::string& s = v.as_string();
    if (NeedsQuoting(s)) {
      out += '"';
      for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
      }
      out += '"';
    } else {
      out += s;
    }
  } else {
    out += v.Dump();
  }
}

void EmitBlock(const Json& v, std::string& out, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  if (v.is_object() && !v.fields().empty()) {
    for (const auto& [k, item] : v.fields()) {
      out += pad;
      Json keyj(k);
      EmitScalar(keyj, out);
      out += ":";
      if ((item.is_object() && !item.fields().empty()) ||
          (item.is_array() && !item.items().empty())) {
        out += "\n";
        EmitBlock(item, out, indent + 2);
      } else if (item.is_object()) {
        out += " {}\n";
      } else if (item.is_array()) {
        out += " []\n";
      } else {
        out += " ";
        EmitScalar(item, out);
        out += "\n";
      }
    }
  } else if (v.is_array() && !v.items().empty()) {
    for (const Json& item : v.items()) {
      out += pad;
      out += "-";
      if ((item.is_object() && !item.fields().empty()) ||
          (item.is_array() && !item.items().empty())) {
        out += "\n";
        EmitBlock(item, out, indent + 2);
      } else if (item.is_object()) {
        out += " {}\n";
      } else if (item.is_array()) {
        out += " []\n";
      } else {
        out += " ";
        EmitScalar(item, out);
        out += "\n";
      }
    }
  } else {
    out += pad;
    EmitScalar(v, out);
    out += "\n";
  }
}

}  // namespace

StatusOr<Json> ParseYaml(std::string_view text) {
  return BlockParser(SplitLines(text)).Run();
}

std::string EmitYaml(const Json& value) {
  std::string out;
  EmitBlock(value, out, 0);
  return out;
}

}  // namespace myrtus::tosca
