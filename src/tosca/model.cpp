#include "tosca/model.hpp"

#include <set>

#include "tosca/yaml.hpp"

namespace myrtus::tosca {

using util::Json;
using util::Status;
using util::StatusOr;

StatusOr<ServiceTemplate> ServiceTemplate::FromJson(const Json& doc) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("service template must be a mapping");
  }
  ServiceTemplate tpl;
  tpl.tosca_version = doc.at("tosca_definitions_version").as_string();
  tpl.description = doc.at("description").as_string();
  tpl.metadata = doc.at("metadata");

  const Json& topo = doc.has("service_template") ? doc.at("service_template")
                                                 : doc.at("topology_template");
  const Json& templates = topo.is_null() ? doc.at("node_templates")
                                         : topo.at("node_templates");
  for (const auto& [name, body] : templates.fields()) {
    NodeTemplate nt;
    nt.name = name;
    nt.type = body.at("type").as_string();
    nt.properties = body.at("properties");
    for (const Json& req : body.at("requirements").items()) {
      // Requirements are a list of single-key maps: - host: some_node
      for (const auto& [rname, target] : req.fields()) {
        Requirement r;
        r.name = rname;
        r.target = target.is_string() ? target.as_string()
                                      : target.at("node").as_string();
        nt.requirements.push_back(std::move(r));
      }
    }
    tpl.node_templates[name] = std::move(nt);
  }

  const Json& policies = topo.is_null() ? doc.at("policies") : topo.at("policies");
  for (const Json& pol : policies.items()) {
    for (const auto& [pname, body] : pol.fields()) {
      Policy p;
      p.name = pname;
      p.type = body.at("type").as_string();
      p.properties = body.at("properties");
      for (const Json& t : body.at("targets").items()) {
        p.targets.push_back(t.as_string());
      }
      tpl.policies.push_back(std::move(p));
    }
  }
  return tpl;
}

StatusOr<ServiceTemplate> ServiceTemplate::FromYaml(std::string_view yaml_text) {
  auto doc = ParseYaml(yaml_text);
  if (!doc.ok()) return doc.status();
  return FromJson(*doc);
}

Json ServiceTemplate::ToJson() const {
  Json templates = Json::MakeObject();
  for (const auto& [name, nt] : node_templates) {
    Json reqs = Json::MakeArray();
    for (const Requirement& r : nt.requirements) {
      reqs.Append(Json::MakeObject().Set(r.name, r.target));
    }
    templates.Set(name, Json::MakeObject()
                            .Set("type", nt.type)
                            .Set("properties", nt.properties)
                            .Set("requirements", std::move(reqs)));
  }
  Json pols = Json::MakeArray();
  for (const Policy& p : policies) {
    Json targets = Json::MakeArray();
    for (const std::string& t : p.targets) targets.Append(t);
    pols.Append(Json::MakeObject().Set(
        p.name, Json::MakeObject()
                    .Set("type", p.type)
                    .Set("targets", std::move(targets))
                    .Set("properties", p.properties)));
  }
  return Json::MakeObject()
      .Set("tosca_definitions_version",
           tosca_version.empty() ? "tosca_2_0" : tosca_version)
      .Set("description", description)
      .Set("metadata", metadata)
      .Set("service_template", Json::MakeObject()
                                   .Set("node_templates", std::move(templates))
                                   .Set("policies", std::move(pols)));
}

std::string ServiceTemplate::ToYaml() const { return EmitYaml(ToJson()); }

std::vector<const Policy*> ServiceTemplate::PoliciesFor(
    const std::string& node) const {
  std::vector<const Policy*> out;
  for (const Policy& p : policies) {
    if (p.targets.empty()) {
      out.push_back(&p);
      continue;
    }
    for (const std::string& t : p.targets) {
      if (t == node) {
        out.push_back(&p);
        break;
      }
    }
  }
  return out;
}

std::vector<ValidationProcessor::Issue> ValidationProcessor::Validate(
    const ServiceTemplate& tpl) const {
  std::vector<Issue> issues;
  static const std::set<std::string> kKnownTypes = {
      std::string(kTypeWorkload), std::string(kTypeCompute),
      std::string(kTypeAccelerator), std::string(kTypeStorage)};
  static const std::set<std::string> kKnownPolicies = {
      std::string(kPolicySecurity), std::string(kPolicyPlacement),
      std::string(kPolicyLatency), std::string(kPolicyEnergy)};

  if (tpl.tosca_version != "tosca_2_0" && tpl.tosca_version != "tosca_simple_yaml_1_3") {
    issues.push_back({"tosca_definitions_version",
                      "unsupported version '" + tpl.tosca_version + "'"});
  }
  if (tpl.node_templates.empty()) {
    issues.push_back({"node_templates", "service template has no node templates"});
  }
  for (const auto& [name, nt] : tpl.node_templates) {
    if (kKnownTypes.count(nt.type) == 0) {
      issues.push_back({name, "unknown node type '" + nt.type + "'"});
    }
    if (!nt.properties.is_object() && !nt.properties.is_null()) {
      issues.push_back({name, "properties must be a mapping"});
    }
    for (const Requirement& r : nt.requirements) {
      if (tpl.node_templates.count(r.target) == 0) {
        issues.push_back(
            {name, "requirement '" + r.name + "' targets unknown template '" +
                       r.target + "'"});
      }
    }
    if (nt.type == kTypeWorkload) {
      const double cpu = nt.properties.at("cpu").as_double(-1);
      if (nt.properties.has("cpu") && cpu <= 0) {
        issues.push_back({name, "cpu must be positive"});
      }
      if (nt.properties.has("memory_mb") &&
          nt.properties.at("memory_mb").as_int() <= 0) {
        issues.push_back({name, "memory_mb must be positive"});
      }
    }
  }

  // Requirement cycles (host chains must be a DAG).
  for (const auto& [name, nt] : tpl.node_templates) {
    std::set<std::string> seen{name};
    const NodeTemplate* cur = &nt;
    while (!cur->requirements.empty()) {
      const std::string& next = cur->requirements.front().target;
      if (seen.count(next) > 0) {
        issues.push_back({name, "requirement cycle through '" + next + "'"});
        break;
      }
      seen.insert(next);
      const auto it = tpl.node_templates.find(next);
      if (it == tpl.node_templates.end()) break;
      cur = &it->second;
    }
  }

  for (const Policy& p : tpl.policies) {
    if (kKnownPolicies.count(p.type) == 0) {
      issues.push_back({p.name, "unknown policy type '" + p.type + "'"});
    }
    for (const std::string& t : p.targets) {
      if (tpl.node_templates.count(t) == 0) {
        issues.push_back({p.name, "policy targets unknown template '" + t + "'"});
      }
    }
    if (p.type == kPolicySecurity) {
      const std::string level = p.properties.at("level").as_string();
      if (!security::ParseSecurityLevel(level).ok()) {
        issues.push_back({p.name, "invalid security level '" + level + "'"});
      }
    }
    if (p.type == kPolicyLatency &&
        p.properties.at("max_ms").as_double(-1) <= 0) {
      issues.push_back({p.name, "max_ms must be positive"});
    }
  }
  return issues;
}

Status ValidationProcessor::Check(const ServiceTemplate& tpl) const {
  const std::vector<Issue> issues = Validate(tpl);
  if (issues.empty()) return Status::Ok();
  std::string msg = "TOSCA validation failed:";
  for (const Issue& i : issues) msg += " [" + i.where + "] " + i.problem + ";";
  return Status::InvalidArgument(msg);
}

StatusOr<std::vector<sched::PodSpec>> LowerToPods(const ServiceTemplate& tpl) {
  ValidationProcessor validator;
  MYRTUS_RETURN_IF_ERROR(validator.Check(tpl));

  std::vector<sched::PodSpec> pods;
  for (const auto& [name, nt] : tpl.node_templates) {
    if (nt.type != kTypeWorkload && nt.type != kTypeAccelerator) continue;
    sched::PodSpec pod;
    pod.name = name;
    pod.cpu_request = nt.properties.at("cpu").as_double(0.5);
    pod.mem_request_mb =
        static_cast<std::uint64_t>(nt.properties.at("memory_mb").as_int(128));
    pod.needs_accelerator = nt.type == kTypeAccelerator ||
                            nt.properties.at("accelerable").as_bool(false);
    pod.priority = static_cast<int>(nt.properties.at("priority").as_int(0));
    pod.expected_load = nt.properties.at("expected_load").as_double(0.0);

    for (const Policy* p : tpl.PoliciesFor(name)) {
      if (p->type == kPolicySecurity) {
        auto level =
            security::ParseSecurityLevel(p->properties.at("level").as_string());
        if (level.ok()) pod.min_security = *level;
      } else if (p->type == kPolicyPlacement) {
        pod.layer_affinity = p->properties.at("layer").as_string();
        for (const auto& [k, v] : p->properties.at("node_selector").fields()) {
          pod.node_selector[k] = v.as_string();
        }
      }
    }
    pods.push_back(std::move(pod));
  }
  if (pods.empty()) {
    return Status::InvalidArgument("service template defines no workloads");
  }
  return pods;
}

}  // namespace myrtus::tosca
