// CSAR (Cloud Service ARchive) package model: the artifact Modelio's TOSCA
// Designer exports and MIRTO consumes (§V/§VI "Deployment Specification").
// An in-memory archive with TOSCA-Metadata/TOSCA.meta, an entry service
// template, and auxiliary files (scripts, operating-point tables). The
// on-wire form is a length-prefixed flat serialization (stand-in for ZIP).
#pragma once

#include <map>
#include <string>

#include "tosca/model.hpp"
#include "util/status.hpp"

namespace myrtus::tosca {

class CsarPackage {
 public:
  static constexpr std::string_view kMetaPath = "TOSCA-Metadata/TOSCA.meta";

  /// Builds a package around a service template (serialized as YAML at
  /// `entry_path`), generating the TOSCA.meta block.
  static CsarPackage Create(const ServiceTemplate& tpl,
                            const std::string& entry_path = "service.yaml");

  /// Adds or replaces an auxiliary file.
  void AddFile(const std::string& path, std::string contents);
  [[nodiscard]] bool HasFile(const std::string& path) const;
  [[nodiscard]] util::StatusOr<std::string> ReadFile(const std::string& path) const;
  [[nodiscard]] const std::map<std::string, std::string>& files() const {
    return files_;
  }

  /// Path of the entry service template, from TOSCA.meta.
  [[nodiscard]] util::StatusOr<std::string> EntryPath() const;
  /// Parses the entry template back out of the archive.
  [[nodiscard]] util::StatusOr<ServiceTemplate> EntryTemplate() const;

  /// Flat serialization: "CSAR1\n" then, per file,
  /// "<path>\n<length>\n<bytes>". Deterministic (path-sorted).
  [[nodiscard]] std::string Pack() const;
  static util::StatusOr<CsarPackage> Unpack(std::string_view data);

  [[nodiscard]] std::size_t TotalBytes() const;

 private:
  std::map<std::string, std::string> files_;
};

}  // namespace myrtus::tosca
