// A YAML-subset parser producing util::Json documents. TOSCA service
// templates are YAML (§V: "the deployment specification will be passed from
// Modelio to dfg-mlir in TOSCA format (i.e., YAML)"), so the DPE/TOSCA stack
// needs block mappings, block sequences, nested indentation, comments,
// quoted scalars, and JSON-style flow collections. Anchors, aliases, tags,
// multi-document streams, and block scalars are intentionally out of scope.
#pragma once

#include <string_view>

#include "util/json.hpp"
#include "util/status.hpp"

namespace myrtus::tosca {

/// Parses a YAML document into a Json tree. Scalars are typed: integers,
/// floats, booleans (true/false), null (~ / null / empty), strings otherwise.
util::StatusOr<util::Json> ParseYaml(std::string_view text);

/// Emits a Json tree as block-style YAML (round-trips through ParseYaml).
std::string EmitYaml(const util::Json& value);

}  // namespace myrtus::tosca
