#include "tosca/csar.hpp"

#include <charconv>

namespace myrtus::tosca {

CsarPackage CsarPackage::Create(const ServiceTemplate& tpl,
                                const std::string& entry_path) {
  CsarPackage pkg;
  pkg.AddFile(entry_path, tpl.ToYaml());
  pkg.AddFile(std::string(kMetaPath),
              "TOSCA-Meta-File-Version: 1.1\n"
              "CSAR-Version: 2.0\n"
              "Created-By: MYRTUS DPE\n"
              "Entry-Definitions: " + entry_path + "\n");
  return pkg;
}

void CsarPackage::AddFile(const std::string& path, std::string contents) {
  files_[path] = std::move(contents);
}

bool CsarPackage::HasFile(const std::string& path) const {
  return files_.count(path) > 0;
}

util::StatusOr<std::string> CsarPackage::ReadFile(const std::string& path) const {
  const auto it = files_.find(path);
  if (it == files_.end()) return util::Status::NotFound("csar: " + path);
  return it->second;
}

util::StatusOr<std::string> CsarPackage::EntryPath() const {
  auto meta = ReadFile(std::string(kMetaPath));
  if (!meta.ok()) return util::Status::InvalidArgument("csar: missing TOSCA.meta");
  const std::string needle = "Entry-Definitions: ";
  const std::size_t pos = meta->find(needle);
  if (pos == std::string::npos) {
    return util::Status::InvalidArgument("csar: TOSCA.meta lacks Entry-Definitions");
  }
  const std::size_t start = pos + needle.size();
  const std::size_t end = meta->find('\n', start);
  return meta->substr(start, end == std::string::npos ? end : end - start);
}

util::StatusOr<ServiceTemplate> CsarPackage::EntryTemplate() const {
  auto entry = EntryPath();
  if (!entry.ok()) return entry.status();
  auto yaml = ReadFile(*entry);
  if (!yaml.ok()) {
    return util::Status::InvalidArgument("csar: entry template missing: " + *entry);
  }
  return ServiceTemplate::FromYaml(*yaml);
}

std::string CsarPackage::Pack() const {
  std::string out = "CSAR1\n";
  for (const auto& [path, contents] : files_) {
    out += path;
    out += '\n';
    out += std::to_string(contents.size());
    out += '\n';
    out += contents;
  }
  return out;
}

util::StatusOr<CsarPackage> CsarPackage::Unpack(std::string_view data) {
  if (data.substr(0, 6) != "CSAR1\n") {
    return util::Status::InvalidArgument("csar: bad magic");
  }
  CsarPackage pkg;
  std::size_t pos = 6;
  while (pos < data.size()) {
    const std::size_t path_end = data.find('\n', pos);
    if (path_end == std::string_view::npos) {
      return util::Status::DataLoss("csar: truncated path");
    }
    const std::string path(data.substr(pos, path_end - pos));
    pos = path_end + 1;
    const std::size_t len_end = data.find('\n', pos);
    if (len_end == std::string_view::npos) {
      return util::Status::DataLoss("csar: truncated length");
    }
    std::size_t len = 0;
    const std::string_view len_str = data.substr(pos, len_end - pos);
    const auto [p, ec] =
        std::from_chars(len_str.data(), len_str.data() + len_str.size(), len);
    if (ec != std::errc() || p != len_str.data() + len_str.size()) {
      return util::Status::DataLoss("csar: bad length field");
    }
    pos = len_end + 1;
    if (pos + len > data.size()) {
      return util::Status::DataLoss("csar: truncated file body");
    }
    pkg.AddFile(path, std::string(data.substr(pos, len)));
    pos += len;
  }
  return pkg;
}

std::size_t CsarPackage::TotalBytes() const {
  std::size_t total = 0;
  for (const auto& [path, contents] : files_) {
    total += path.size() + contents.size();
  }
  return total;
}

}  // namespace myrtus::tosca
