// TOSCA object model (OASIS TOSCA v2.0 subset): service templates with node
// templates, requirements, and policies — the contract between the DPE
// (which emits deployment specifications) and the MIRTO agent (whose API
// daemon validates incoming TOSCA requests, §IV).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/pod.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace myrtus::tosca {

/// Node-template types the MYRTUS profile defines.
inline constexpr std::string_view kTypeWorkload = "myrtus.nodes.Workload";
inline constexpr std::string_view kTypeCompute = "myrtus.nodes.Compute";
inline constexpr std::string_view kTypeAccelerator = "myrtus.nodes.AcceleratedKernel";
inline constexpr std::string_view kTypeStorage = "myrtus.nodes.Storage";

/// Policy types.
inline constexpr std::string_view kPolicySecurity = "myrtus.policies.SecurityLevel";
inline constexpr std::string_view kPolicyPlacement = "myrtus.policies.Placement";
inline constexpr std::string_view kPolicyLatency = "myrtus.policies.EndToEndLatency";
inline constexpr std::string_view kPolicyEnergy = "myrtus.policies.EnergyBudget";

struct Requirement {
  std::string name;    // e.g. "host", "connects_to"
  std::string target;  // another node-template name
};

struct NodeTemplate {
  std::string name;
  std::string type;
  util::Json properties;  // object
  std::vector<Requirement> requirements;
};

struct Policy {
  std::string name;
  std::string type;
  std::vector<std::string> targets;  // node-template names ("" = all)
  util::Json properties;
};

struct ServiceTemplate {
  std::string tosca_version;  // "tosca_2_0" expected
  std::string description;
  std::map<std::string, NodeTemplate> node_templates;
  std::vector<Policy> policies;
  util::Json metadata;  // free-form (operating points, KPI estimates, ...)

  /// Parses from a YAML/JSON document tree.
  static util::StatusOr<ServiceTemplate> FromJson(const util::Json& doc);
  static util::StatusOr<ServiceTemplate> FromYaml(std::string_view yaml_text);
  [[nodiscard]] util::Json ToJson() const;
  [[nodiscard]] std::string ToYaml() const;

  /// Policies applying to a given node template (by target list).
  [[nodiscard]] std::vector<const Policy*> PoliciesFor(const std::string& node) const;
};

/// The MIRTO TOSCA Validation Processor (Fig. 3): structural and semantic
/// validation of an incoming service template.
class ValidationProcessor {
 public:
  struct Issue {
    std::string where;
    std::string problem;
  };

  /// Returns the list of problems; empty means valid.
  [[nodiscard]] std::vector<Issue> Validate(const ServiceTemplate& tpl) const;
  /// Convenience: OK or INVALID_ARGUMENT with a combined message.
  [[nodiscard]] util::Status Check(const ServiceTemplate& tpl) const;
};

/// Lowers the workload node templates of a validated service template into
/// pod specs for the kube-like substrate, applying security/placement
/// policies. This is the design-time → runtime hand-off (Pillar 3 → 2).
util::StatusOr<std::vector<sched::PodSpec>> LowerToPods(
    const ServiceTemplate& tpl);

}  // namespace myrtus::tosca
