#include "fl/model.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace myrtus::fl {
namespace {

double Sigmoid(double z) {
  if (z >= 0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LinearModel::LinearModel(std::size_t features, Link link)
    : weights_(features, 0.0), link_(link) {}

double LinearModel::Forward(const std::vector<double>& x) const {
  double z = bias_;
  const std::size_t n = std::min(x.size(), weights_.size());
  for (std::size_t i = 0; i < n; ++i) z += weights_[i] * x[i];
  return z;
}

double LinearModel::Predict(const std::vector<double>& x) const {
  const double z = Forward(x);
  return link_ == Link::kLogistic ? Sigmoid(z) : z;
}

double LinearModel::TrainEpoch(const Dataset& data, double learning_rate,
                               util::Rng& rng, double l2,
                               const std::vector<double>* prox_center,
                               double prox_mu) {
  if (data.empty()) return 0.0;
  std::vector<std::size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  std::shuffle(order.begin(), order.end(), rng);

  double total_loss = 0.0;
  for (const std::size_t idx : order) {
    const Example& ex = data[idx];
    const double pred = Predict(ex.features);
    double grad_out;  // d(loss)/d(z), same form for both links
    if (link_ == Link::kLogistic) {
      const double p = std::clamp(pred, 1e-12, 1.0 - 1e-12);
      total_loss += -(ex.label * std::log(p) + (1 - ex.label) * std::log(1 - p));
      grad_out = pred - ex.label;
    } else {
      const double err = pred - ex.label;
      total_loss += err * err;
      grad_out = 2.0 * err;
    }
    const std::size_t n = std::min(ex.features.size(), weights_.size());
    for (std::size_t i = 0; i < n; ++i) {
      double grad = grad_out * ex.features[i] + l2 * weights_[i];
      if (prox_center != nullptr && prox_mu > 0 && i < prox_center->size()) {
        grad += prox_mu * (weights_[i] - (*prox_center)[i]);
      }
      weights_[i] -= learning_rate * grad;
    }
    double bias_grad = grad_out;
    if (prox_center != nullptr && prox_mu > 0 &&
        prox_center->size() == weights_.size() + 1) {
      bias_grad += prox_mu * (bias_ - prox_center->back());
    }
    bias_ -= learning_rate * bias_grad;
  }
  return total_loss / static_cast<double>(data.size());
}

double LinearModel::Evaluate(const Dataset& data) const {
  if (data.empty()) return 0.0;
  double total = 0.0;
  for (const Example& ex : data) {
    const double pred = Predict(ex.features);
    if (link_ == Link::kLogistic) {
      const double p = std::clamp(pred, 1e-12, 1.0 - 1e-12);
      total += -(ex.label * std::log(p) + (1 - ex.label) * std::log(1 - p));
    } else {
      const double err = pred - ex.label;
      total += err * err;
    }
  }
  return total / static_cast<double>(data.size());
}

double LinearModel::Accuracy(const Dataset& data) const {
  if (data.empty()) return 0.0;
  std::size_t correct = 0;
  for (const Example& ex : data) {
    if (Classify(ex.features) == (ex.label >= 0.5)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

std::vector<double> LinearModel::Parameters() const {
  std::vector<double> p = weights_;
  p.push_back(bias_);
  return p;
}

void LinearModel::SetParameters(const std::vector<double>& params) {
  for (std::size_t i = 0; i < weights_.size() && i < params.size(); ++i) {
    weights_[i] = params[i];
  }
  if (params.size() >= weights_.size() + 1) bias_ = params[weights_.size()];
}

}  // namespace myrtus::fl
