#include "fl/fedavg.hpp"

#include <algorithm>
#include <numeric>

#include "util/parallel.hpp"

namespace myrtus::fl {

FederatedTrainer::FederatedTrainer(std::vector<Dataset> client_data,
                                   std::size_t features, LinearModel::Link link,
                                   std::uint64_t seed)
    : client_data_(std::move(client_data)),
      features_(features),
      link_(link),
      seed_(seed),
      rng_(seed, "fedavg") {}

LinearModel FederatedTrainer::Train(const FederatedConfig& config,
                                    FederatedMetrics* metrics) {
  LinearModel global(features_, link_);
  const std::size_t param_bytes = (features_ + 1) * sizeof(double);
  const Dataset pooled = PooledData();

  for (int round = 0; round < config.rounds; ++round) {
    const std::vector<double> global_params = global.Parameters();

    // Sample participating clients.
    std::vector<std::size_t> participants;
    for (std::size_t c = 0; c < client_data_.size(); ++c) {
      if (client_data_[c].empty()) continue;
      if (config.client_fraction >= 1.0 || rng_.NextBool(config.client_fraction)) {
        participants.push_back(c);
      }
    }
    if (participants.empty() && !client_data_.empty()) {
      participants.push_back(rng_.NextBounded(client_data_.size()));
    }

    // Local training: the federated rounds' dominant cost, and exactly the
    // part that is client-independent — each client starts from the same
    // global parameters and sees only its private shard. Clients train in
    // parallel on their own RNG substream (seed, round, client), so the
    // update a client computes is independent of worker count and of which
    // other clients participated; the weighted aggregation then folds
    // serially in participant order.
    const std::size_t n_clients = client_data_.size();
    const std::vector<std::vector<double>> updates =
        util::ParallelMap<std::vector<double>>(
            participants.size(), [&](std::size_t p) {
              const std::size_t c = participants[p];
              util::Rng local_rng(
                  seed_, "fedavg.client",
                  static_cast<std::uint64_t>(round) * n_clients + c);
              LinearModel local(features_, link_);
              local.SetParameters(global_params);
              for (int e = 0; e < config.local_epochs; ++e) {
                local.TrainEpoch(client_data_[c], config.learning_rate,
                                 local_rng, config.l2,
                                 config.prox_mu > 0 ? &global_params : nullptr,
                                 config.prox_mu);
              }
              return local.Parameters();
            });

    std::vector<double> aggregate(features_ + 1, 0.0);
    double total_weight = 0.0;
    for (std::size_t p = 0; p < participants.size(); ++p) {
      const std::size_t c = participants[p];
      const double weight = static_cast<double>(client_data_[c].size());
      for (std::size_t i = 0; i < aggregate.size(); ++i) {
        aggregate[i] += weight * updates[p][i];
      }
      total_weight += weight;
      if (metrics != nullptr) {
        metrics->bytes_uploaded += param_bytes;
        metrics->bytes_downloaded += param_bytes;
      }
    }
    if (total_weight > 0) {
      for (double& p : aggregate) p /= total_weight;
      global.SetParameters(aggregate);
    }
    if (metrics != nullptr) {
      metrics->global_loss_per_round.push_back(global.Evaluate(pooled));
      metrics->participating_clients_per_round.push_back(
          static_cast<int>(participants.size()));
    }
  }
  return global;
}

std::vector<LinearModel> FederatedTrainer::TrainLocalOnly(int epochs,
                                                          double learning_rate) {
  // Isolated baselines by definition: one substream per client, trained in
  // parallel. Slot c of the result is always client c's model.
  const std::vector<std::vector<double>> params =
      util::ParallelMap<std::vector<double>>(
          client_data_.size(), [&](std::size_t c) {
            util::Rng local_rng(seed_, "fedavg.local", c);
            LinearModel local(features_, link_);
            for (int e = 0; e < epochs; ++e) {
              local.TrainEpoch(client_data_[c], learning_rate, local_rng);
            }
            return local.Parameters();
          });
  std::vector<LinearModel> models;
  models.reserve(params.size());
  for (const std::vector<double>& p : params) {
    LinearModel local(features_, link_);
    local.SetParameters(p);
    models.push_back(std::move(local));
  }
  return models;
}

Dataset FederatedTrainer::PooledData() const {
  Dataset pooled;
  for (const Dataset& d : client_data_) {
    pooled.insert(pooled.end(), d.begin(), d.end());
  }
  return pooled;
}

std::vector<Dataset> NonIidSplit(Dataset data, std::size_t clients,
                                 util::Rng& rng, int shards_per_client) {
  std::sort(data.begin(), data.end(), [](const Example& a, const Example& b) {
    return a.label < b.label;
  });
  const std::size_t total_shards = clients * static_cast<std::size_t>(shards_per_client);
  std::vector<std::size_t> shard_order(total_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  std::shuffle(shard_order.begin(), shard_order.end(), rng);

  std::vector<Dataset> out(clients);
  if (data.empty() || total_shards == 0) return out;
  const std::size_t shard_size = std::max<std::size_t>(1, data.size() / total_shards);
  for (std::size_t s = 0; s < total_shards; ++s) {
    const std::size_t begin = std::min(data.size(), shard_order[s] * shard_size);
    const std::size_t end =
        shard_order[s] + 1 == total_shards
            ? data.size()
            : std::min(data.size(), (shard_order[s] + 1) * shard_size);
    Dataset& target = out[s % clients];
    target.insert(target.end(), data.begin() + static_cast<long>(begin),
                  data.begin() + static_cast<long>(end));
  }
  return out;
}

}  // namespace myrtus::fl
