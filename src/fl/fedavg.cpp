#include "fl/fedavg.hpp"

#include <algorithm>
#include <numeric>

namespace myrtus::fl {

FederatedTrainer::FederatedTrainer(std::vector<Dataset> client_data,
                                   std::size_t features, LinearModel::Link link,
                                   std::uint64_t seed)
    : client_data_(std::move(client_data)),
      features_(features),
      link_(link),
      rng_(seed, "fedavg") {}

LinearModel FederatedTrainer::Train(const FederatedConfig& config,
                                    FederatedMetrics* metrics) {
  LinearModel global(features_, link_);
  const std::size_t param_bytes = (features_ + 1) * sizeof(double);
  const Dataset pooled = PooledData();

  for (int round = 0; round < config.rounds; ++round) {
    const std::vector<double> global_params = global.Parameters();

    // Sample participating clients.
    std::vector<std::size_t> participants;
    for (std::size_t c = 0; c < client_data_.size(); ++c) {
      if (client_data_[c].empty()) continue;
      if (config.client_fraction >= 1.0 || rng_.NextBool(config.client_fraction)) {
        participants.push_back(c);
      }
    }
    if (participants.empty() && !client_data_.empty()) {
      participants.push_back(rng_.NextBounded(client_data_.size()));
    }

    // Local training.
    std::vector<double> aggregate(features_ + 1, 0.0);
    double total_weight = 0.0;
    for (const std::size_t c : participants) {
      LinearModel local(features_, link_);
      local.SetParameters(global_params);
      for (int e = 0; e < config.local_epochs; ++e) {
        local.TrainEpoch(client_data_[c], config.learning_rate, rng_, config.l2,
                         config.prox_mu > 0 ? &global_params : nullptr,
                         config.prox_mu);
      }
      const double weight = static_cast<double>(client_data_[c].size());
      const std::vector<double> params = local.Parameters();
      for (std::size_t i = 0; i < aggregate.size(); ++i) {
        aggregate[i] += weight * params[i];
      }
      total_weight += weight;
      if (metrics != nullptr) {
        metrics->bytes_uploaded += param_bytes;
        metrics->bytes_downloaded += param_bytes;
      }
    }
    if (total_weight > 0) {
      for (double& p : aggregate) p /= total_weight;
      global.SetParameters(aggregate);
    }
    if (metrics != nullptr) {
      metrics->global_loss_per_round.push_back(global.Evaluate(pooled));
      metrics->participating_clients_per_round.push_back(
          static_cast<int>(participants.size()));
    }
  }
  return global;
}

std::vector<LinearModel> FederatedTrainer::TrainLocalOnly(int epochs,
                                                          double learning_rate) {
  std::vector<LinearModel> models;
  models.reserve(client_data_.size());
  for (const Dataset& data : client_data_) {
    LinearModel local(features_, link_);
    for (int e = 0; e < epochs; ++e) {
      local.TrainEpoch(data, learning_rate, rng_);
    }
    models.push_back(std::move(local));
  }
  return models;
}

Dataset FederatedTrainer::PooledData() const {
  Dataset pooled;
  for (const Dataset& d : client_data_) {
    pooled.insert(pooled.end(), d.begin(), d.end());
  }
  return pooled;
}

std::vector<Dataset> NonIidSplit(Dataset data, std::size_t clients,
                                 util::Rng& rng, int shards_per_client) {
  std::sort(data.begin(), data.end(), [](const Example& a, const Example& b) {
    return a.label < b.label;
  });
  const std::size_t total_shards = clients * static_cast<std::size_t>(shards_per_client);
  std::vector<std::size_t> shard_order(total_shards);
  std::iota(shard_order.begin(), shard_order.end(), 0);
  std::shuffle(shard_order.begin(), shard_order.end(), rng);

  std::vector<Dataset> out(clients);
  if (data.empty() || total_shards == 0) return out;
  const std::size_t shard_size = std::max<std::size_t>(1, data.size() / total_shards);
  for (std::size_t s = 0; s < total_shards; ++s) {
    const std::size_t begin = std::min(data.size(), shard_order[s] * shard_size);
    const std::size_t end =
        shard_order[s] + 1 == total_shards
            ? data.size()
            : std::min(data.size(), (shard_order[s] + 1) * shard_size);
    Dataset& target = out[s % clients];
    target.insert(target.end(), data.begin() + static_cast<long>(begin),
                  data.begin() + static_cast<long>(end));
  }
  return out;
}

}  // namespace myrtus::fl
