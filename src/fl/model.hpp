// Small learning models for the MIRTO agents: linear / logistic models
// trained with SGD. Edge agents use them to "estimate the best operating
// point of a workload" (§IV); the FL layer averages them across agents.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace myrtus::fl {

/// A labeled example.
struct Example {
  std::vector<double> features;
  double label = 0.0;  // regression target or {0,1} class
};

using Dataset = std::vector<Example>;

/// Linear model y = w.x + b, used as a regressor (identity link) or a binary
/// classifier (logistic link).
class LinearModel {
 public:
  enum class Link : std::uint8_t { kIdentity, kLogistic };

  LinearModel(std::size_t features, Link link);

  [[nodiscard]] double Predict(const std::vector<double>& x) const;
  /// For logistic models: class decision at 0.5.
  [[nodiscard]] bool Classify(const std::vector<double>& x) const {
    return Predict(x) >= 0.5;
  }

  /// One epoch of SGD over `data` (shuffled with `rng`); returns mean loss
  /// (squared error or cross-entropy). `l2` applies weight decay;
  /// `prox_center`/`prox_mu` add a FedProx proximal pull toward a reference
  /// parameter vector (ignored when prox_mu == 0).
  double TrainEpoch(const Dataset& data, double learning_rate, util::Rng& rng,
                    double l2 = 0.0, const std::vector<double>* prox_center = nullptr,
                    double prox_mu = 0.0);

  /// Mean loss without updating.
  [[nodiscard]] double Evaluate(const Dataset& data) const;
  /// Classification accuracy (logistic models).
  [[nodiscard]] double Accuracy(const Dataset& data) const;

  /// Flat parameter vector: weights then bias.
  [[nodiscard]] std::vector<double> Parameters() const;
  void SetParameters(const std::vector<double>& params);
  [[nodiscard]] std::size_t feature_count() const { return weights_.size(); }
  [[nodiscard]] Link link() const { return link_; }

 private:
  [[nodiscard]] double Forward(const std::vector<double>& x) const;
  std::vector<double> weights_;
  double bias_ = 0.0;
  Link link_;
};

}  // namespace myrtus::fl
