// Federated learning across MIRTO agents (§IV: "combining learned models
// from different agents using FL techniques, allowing MIRTO edge agents to
// evolve based on each other's experiences"). FedAvg and FedProx aggregation
// over simulated clients, with a non-IID partitioner for realistic edge data.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fl/model.hpp"

namespace myrtus::fl {

struct FederatedConfig {
  int rounds = 20;
  int local_epochs = 2;
  double learning_rate = 0.05;
  double client_fraction = 1.0;  // fraction of clients sampled per round
  double prox_mu = 0.0;          // >0 enables FedProx
  double l2 = 0.0;
};

struct FederatedMetrics {
  std::vector<double> global_loss_per_round;
  std::uint64_t bytes_uploaded = 0;    // client -> server traffic
  std::uint64_t bytes_downloaded = 0;  // server -> client traffic
  /// Sample count of each round, in round order (earlier revisions kept only
  /// the final round's count, hiding participation dips under sampling).
  std::vector<int> participating_clients_per_round;

  /// Participations summed over every round.
  [[nodiscard]] int total_participations() const {
    int total = 0;
    for (const int n : participating_clients_per_round) total += n;
    return total;
  }
  /// Mean clients per round (0 when no rounds ran).
  [[nodiscard]] double mean_participating_clients() const {
    if (participating_clients_per_round.empty()) return 0.0;
    return static_cast<double>(total_participations()) /
           static_cast<double>(participating_clients_per_round.size());
  }
};

class FederatedTrainer {
 public:
  /// `client_data[i]` is client i's private dataset (never leaves the client
  /// — only parameter vectors travel, matching the paper's privacy framing).
  FederatedTrainer(std::vector<Dataset> client_data, std::size_t features,
                   LinearModel::Link link, std::uint64_t seed);

  /// Runs federated training; returns the final global model.
  LinearModel Train(const FederatedConfig& config, FederatedMetrics* metrics = nullptr);

  /// Baseline: each client trains alone; returns per-client models.
  std::vector<LinearModel> TrainLocalOnly(int epochs, double learning_rate);

  /// Union of all client data (for evaluation only; a real deployment never
  /// materializes this).
  [[nodiscard]] Dataset PooledData() const;

 private:
  std::vector<Dataset> client_data_;
  std::size_t features_;
  LinearModel::Link link_;
  /// Root seed for the trainer's RNG streams. Client sampling draws from
  /// rng_; each client's local-training epochs draw from their own
  /// (seed, stream, round * clients + client) substream so client updates
  /// can run in parallel without any shared RNG state — the update a client
  /// computes depends only on (seed, round, client), never on worker count.
  std::uint64_t seed_;
  util::Rng rng_;
};

/// Splits `data` across `clients` in a non-IID way: examples are sorted by
/// label and dealt in contiguous shards, so each client sees a skewed slice.
std::vector<Dataset> NonIidSplit(Dataset data, std::size_t clients,
                                 util::Rng& rng, int shards_per_client = 2);

}  // namespace myrtus::fl
