#include "continuum/monitor.hpp"

namespace myrtus::continuum {

MonitoringService::MonitoringService(sim::Engine& engine, Infrastructure& infra,
                                     kb::ResourceRegistry& registry)
    : engine_(engine), infra_(infra), registry_(registry) {}

void MonitoringService::Start(sim::SimTime period) {
  Stop();
  loop_ = engine_.SchedulePeriodic(period, [this] { SampleOnce(); });
}

void MonitoringService::Stop() {
  engine_.Cancel(loop_);
  loop_ = {};
}

void MonitoringService::AddAlertRule(std::string metric, double threshold,
                                     AlertHandler handler) {
  rules_.push_back(Rule{std::move(metric), threshold, std::move(handler)});
}

void MonitoringService::SampleOnce() {
  ++samples_;
  const std::int64_t now_ns = engine_.Now().ns;
  for (const auto& node : infra_.nodes) {
    double max_util = 0.0;
    for (std::size_t d = 0; d < node->devices().size(); ++d) {
      max_util = std::max(max_util, node->Utilization(d));
    }
    const auto depth = static_cast<double>(node->QueueDepth());
    const double energy = node->total_energy_mj();

    registry_.AppendTelemetry(node->id(), "utilization", {now_ns, max_util});
    registry_.AppendTelemetry(node->id(), "queue_depth", {now_ns, depth});
    registry_.AppendTelemetry(node->id(), "energy_mj", {now_ns, energy});

    for (const Rule& rule : rules_) {
      double value = 0.0;
      if (rule.metric == "utilization") value = max_util;
      else if (rule.metric == "queue_depth") value = depth;
      else if (rule.metric == "energy_mj") value = energy;
      else continue;
      if (value > rule.threshold) {
        ++alerts_;
        rule.handler(Alert{node->id(), rule.metric, value, rule.threshold, now_ns});
      }
    }
  }
}

}  // namespace myrtus::continuum
