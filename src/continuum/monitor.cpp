#include "continuum/monitor.hpp"

#include <algorithm>
#include <array>

#include "telemetry/telemetry.hpp"

namespace myrtus::continuum {
namespace {

// The exact set of series SampleOnce() writes; AddAlertRule validates
// against it so rules can only reference metrics that can actually fire.
constexpr std::array<std::string_view, 3> kSampledMetrics = {
    "utilization", "queue_depth", "energy_mj"};

}  // namespace

MonitoringService::MonitoringService(sim::Engine& engine, Infrastructure& infra,
                                     kb::ResourceRegistry& registry)
    : engine_(engine), infra_(infra), registry_(registry) {}

void MonitoringService::Start(sim::SimTime period) {
  Stop();
  loop_ = engine_.SchedulePeriodic(period, [this] { SampleOnce(); });
}

void MonitoringService::Stop() {
  engine_.Cancel(loop_);
  loop_ = {};
}

util::Status MonitoringService::AddAlertRule(std::string metric,
                                             double threshold,
                                             AlertHandler handler) {
  if (std::find(kSampledMetrics.begin(), kSampledMetrics.end(), metric) ==
      kSampledMetrics.end()) {
    std::string known;
    for (const std::string_view m : kSampledMetrics) {
      if (!known.empty()) known += ", ";
      known += m;
    }
    return util::Status::InvalidArgument("unknown alert metric \"" + metric +
                                         "\"; sampled metrics are: " + known);
  }
  rules_.push_back(Rule{std::move(metric), threshold, std::move(handler)});
  return util::Status::Ok();
}

void MonitoringService::AttachSlo(telemetry::SloEngine* slo,
                                  std::string slo_objective) {
  slo_ = slo;
  slo_objective_ = std::move(slo_objective);
}

void MonitoringService::SampleOnce() {
  ++samples_;
  telemetry::ScopedSpan span("monitor.sample", "continuum");
  const std::int64_t now_ns = engine_.Now().ns;
  if (slo_ != nullptr) {
    for (const auto& node : infra_.nodes) {
      slo_->RecordAvailability(slo_objective_, node->up(), now_ns);
    }
    slo_->Evaluate(now_ns);
    // Burn-rate alert state is knowledge, not just telemetry: publish it so
    // KB consumers see the same breach the sampler saw.
    if (const telemetry::SloStatus* s = slo_->Find(slo_objective_)) {
      registry_.PutSloState(
          "monitor", slo_objective_,
          util::Json::MakeObject()
              .Set("state", std::string(telemetry::SloStateName(s->state)))
              .Set("fast_burn_rate", s->fast_burn_rate)
              .Set("slow_burn_rate", s->slow_burn_rate)
              .Set("breaches", s->breaches)
              .Set("at_ns", now_ns));
    }
    if (slo_->any_breached()) {
      span.SetAttribute("slo_breach", slo_objective_);
    }
  }
  for (const auto& node : infra_.nodes) {
    double max_util = 0.0;
    for (std::size_t d = 0; d < node->devices().size(); ++d) {
      max_util = std::max(max_util, node->Utilization(d));
    }
    const auto depth = static_cast<double>(node->QueueDepth());
    const double energy = node->total_energy_mj();

    registry_.AppendTelemetry(node->id(), "utilization", {now_ns, max_util});
    registry_.AppendTelemetry(node->id(), "queue_depth", {now_ns, depth});
    registry_.AppendTelemetry(node->id(), "energy_mj", {now_ns, energy});

    if (telemetry::Enabled()) {
      auto& metrics = telemetry::Global().metrics;
      // Liveness gauge: chaos-driven device kills show up here the sample
      // after injection, which is what dashboards alert on.
      metrics.Set("myrtus_node_up", node->up() ? 1.0 : 0.0,
                  {{"node", node->id()}});
      metrics.Set("myrtus_continuum_node_utilization", max_util,
                  {{"node", node->id()}});
      metrics.Set("myrtus_continuum_node_queue_depth", depth,
                  {{"node", node->id()}});
      metrics.Set("myrtus_continuum_node_energy_mj", energy,
                  {{"node", node->id()}});
    }

    for (const Rule& rule : rules_) {
      double value = 0.0;
      if (rule.metric == "utilization") value = max_util;
      else if (rule.metric == "queue_depth") value = depth;
      else if (rule.metric == "energy_mj") value = energy;
      else continue;
      if (value > rule.threshold) {
        ++alerts_;
        if (telemetry::Enabled()) {
          telemetry::Global().metrics.Add("myrtus_continuum_alerts_total", 1.0,
                                          {{"metric", rule.metric}});
        }
        rule.handler(Alert{node->id(), rule.metric, value, rule.threshold, now_ns});
      }
    }
  }
}

}  // namespace myrtus::continuum
