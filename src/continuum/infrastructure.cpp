#include "continuum/infrastructure.hpp"

namespace myrtus::continuum {

ComputeNode* Infrastructure::FindNode(const std::string& id) const {
  for (const auto& n : nodes) {
    if (n->id() == id) return n.get();
  }
  return nullptr;
}

std::vector<ComputeNode*> Infrastructure::NodesInLayer(Layer layer) const {
  std::vector<ComputeNode*> out;
  for (const auto& n : nodes) {
    if (n->layer() == layer) out.push_back(n.get());
  }
  return out;
}

std::string Infrastructure::DefaultGateway() const {
  for (const auto& n : nodes) {
    if (n->kind() == "gateway") return n->id();
  }
  return nodes.empty() ? std::string() : nodes.front()->id();
}

Infrastructure BuildInfrastructure(sim::Engine& engine,
                                   const InfrastructureSpec& spec) {
  Infrastructure infra;
  std::vector<std::string> gateway_ids;
  std::vector<std::string> fmdc_ids;

  // --- Fog layer: smart gateways and FMDCs --------------------------------
  for (int g = 0; g < spec.gateways; ++g) {
    const std::string id = "gw-" + std::to_string(g);
    auto node = std::make_unique<ComputeNode>(
        engine, id, Layer::kFog, "gateway", security::SecurityLevel::kMedium,
        4096);
    // Light local processing only (§III: "supports light local processing").
    node->AddDevice(MakeLittleCore(id + "/cpu"));
    gateway_ids.push_back(id);
    infra.nodes.push_back(std::move(node));
  }
  for (int f = 0; f < spec.fmdcs; ++f) {
    const std::string id = "fmdc-" + std::to_string(f);
    auto node = std::make_unique<ComputeNode>(
        engine, id, Layer::kFog, "fmdc", security::SecurityLevel::kHigh,
        65536);
    node->AddDevice(
        MakeServerCpu(id + "/servers", 8 * spec.fmdc_servers, 2.6));
    fmdc_ids.push_back(id);
    infra.nodes.push_back(std::move(node));
  }

  // --- Cloud layer ---------------------------------------------------------
  {
    auto node = std::make_unique<ComputeNode>(
        engine, "cloud-0", Layer::kCloud, "dc", security::SecurityLevel::kHigh,
        1048576);
    node->AddDevice(MakeServerCpu("cloud-0/servers", 16 * spec.cloud_servers, 3.0));
    infra.nodes.push_back(std::move(node));
  }

  // --- Edge layer ----------------------------------------------------------
  int edge_counter = 0;
  const auto add_edge_node = [&](const std::string& kind) {
    const std::string id = "edge-" + std::to_string(edge_counter++);
    security::SecurityLevel level = security::SecurityLevel::kLow;
    auto node = std::make_unique<ComputeNode>(engine, id, Layer::kEdge, kind,
                                              level, 2048);
    if (kind == "hmpsoc") {
      node->AddDevice(MakeBigCore(id + "/big"));
      node->AddDevice(MakeLittleCore(id + "/little"));
      node->AddDevice(MakeFpgaAccelerator(id + "/fpga"));
    } else if (kind == "riscv") {
      node->AddDevice(MakeRiscvCcu(id + "/riscv"));
    } else {  // multicore
      node->AddDevice(MakeBigCore(id + "/big"));
      node->AddDevice(MakeLittleCore(id + "/little"));
    }
    // Home gateway round-robin; degenerate specs uplink to fog/cloud directly.
    const std::string uplink =
        !gateway_ids.empty()
            ? gateway_ids[static_cast<std::size_t>(edge_counter - 1) %
                          gateway_ids.size()]
            : (!fmdc_ids.empty() ? fmdc_ids[0] : std::string("cloud-0"));
    infra.topology.AddBidirectional(id, uplink, spec.edge_gw_latency,
                                    spec.edge_gw_bw_bps);
    infra.nodes.push_back(std::move(node));
  };
  for (int i = 0; i < spec.edge_hmpsoc; ++i) add_edge_node("hmpsoc");
  for (int i = 0; i < spec.edge_riscv; ++i) add_edge_node("riscv");
  for (int i = 0; i < spec.edge_multicore; ++i) add_edge_node("multicore");

  // --- Inter-layer links ---------------------------------------------------
  for (const std::string& gw : gateway_ids) {
    for (const std::string& fmdc : fmdc_ids) {
      infra.topology.AddBidirectional(gw, fmdc, spec.gw_fmdc_latency,
                                      spec.gw_fmdc_bw_bps);
    }
  }
  for (const std::string& fmdc : fmdc_ids) {
    infra.topology.AddBidirectional(fmdc, "cloud-0", spec.fmdc_cloud_latency,
                                    spec.fmdc_cloud_bw_bps);
  }
  // Degenerate specs: connect gateways straight to the cloud.
  if (fmdc_ids.empty()) {
    for (const std::string& gw : gateway_ids) {
      infra.topology.AddBidirectional(gw, "cloud-0", spec.fmdc_cloud_latency,
                                      spec.fmdc_cloud_bw_bps);
    }
  }
  return infra;
}

}  // namespace myrtus::continuum
