// Monitoring & Observability building block, infrastructure side (§III):
// periodic PMC sampling on every node (latency/energy/utilization — "FPGA-
// based edge devices are already instrumented … performance monitoring
// counters"), published to the KB registry, plus threshold alert rules that
// turn raw telemetry into the "internal triggers" the MIRTO loop senses.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "continuum/infrastructure.hpp"
#include "kb/registry.hpp"
#include "sim/engine.hpp"
#include "telemetry/slo.hpp"
#include "util/status.hpp"

namespace myrtus::continuum {

/// A fired alert.
struct Alert {
  std::string node_id;
  std::string metric;
  double value = 0.0;
  double threshold = 0.0;
  std::int64_t at_ns = 0;
};

class MonitoringService {
 public:
  /// Samples every node of `infra` each `period`, writing utilization,
  /// queue depth, and cumulative energy into `registry`.
  MonitoringService(sim::Engine& engine, Infrastructure& infra,
                    kb::ResourceRegistry& registry);

  void Start(sim::SimTime period);
  void Stop();
  /// One sampling pass (also used by Start's periodic loop).
  void SampleOnce();

  /// Alert when `metric` exceeds `threshold` on any node. Metrics:
  /// "utilization", "queue_depth", "energy_mj". The handler runs inside the
  /// sampling pass; alerts re-fire on every violating sample (edge-triggered
  /// dedup is the consumer's job — MIRTO's Analyze step).
  /// Returns INVALID_ARGUMENT for a metric the sampler never produces — a
  /// rule on a misspelled metric would otherwise silently never fire.
  using AlertHandler = std::function<void(const Alert&)>;
  [[nodiscard]] util::Status AddAlertRule(std::string metric, double threshold,
                                          AlertHandler handler);

  [[nodiscard]] std::uint64_t samples_taken() const { return samples_; }
  [[nodiscard]] std::uint64_t alerts_fired() const { return alerts_; }

  /// Attaches an SLO engine (not owned; may be null to detach). Every
  /// sampling pass then feeds each node's liveness into the availability
  /// objective `slo_objective` (when the engine defines it) and re-evaluates
  /// burn rates, so threshold alerts and burn-rate alerts ride the same
  /// cadence. Breach state lands in the registry under the SLO keys.
  void AttachSlo(telemetry::SloEngine* slo,
                 std::string slo_objective = "fleet.availability");

 private:
  struct Rule {
    std::string metric;
    double threshold;
    AlertHandler handler;
  };

  sim::Engine& engine_;
  Infrastructure& infra_;
  kb::ResourceRegistry& registry_;
  std::vector<Rule> rules_;
  sim::EventHandle loop_;
  std::uint64_t samples_ = 0;
  std::uint64_t alerts_ = 0;
  telemetry::SloEngine* slo_ = nullptr;
  std::string slo_objective_;
};

}  // namespace myrtus::continuum
