#include "continuum/change_tracker.hpp"

namespace myrtus::continuum {

namespace {
constexpr std::size_t kWordBits = 64;
}  // namespace

int ChangeTracker::AddListener(const NodeList& nodes) {
  Sync(nodes);
  const int id = static_cast<int>(listeners_.size());
  Listener listener;
  listener.dirty.assign((synced_ + kWordBits - 1) / kWordBits, 0);
  // A fresh observer has seen nothing: every tracked node starts dirty.
  for (std::size_t i = 0; i < synced_; ++i) {
    listener.dirty[i / kWordBits] |= 1ULL << (i % kWordBits);
  }
  listeners_.push_back(std::move(listener));
  return id;
}

void ChangeTracker::RemoveListener(int listener) {
  if (listener < 0 || static_cast<std::size_t>(listener) >= listeners_.size()) {
    return;
  }
  Listener& l = listeners_[static_cast<std::size_t>(listener)];
  l.active = false;
  l.dirty.clear();
  l.dirty.shrink_to_fit();
}

void ChangeTracker::Sync(const NodeList& nodes) {
  while (synced_ < nodes.size()) {
    const std::size_t i = synced_++;
    ComputeNode* node = nodes[i].get();
    id_to_index_.emplace(node->id(), i);
    energy_mj_ += node->total_energy_mj();
    node->SetChangeHook(
        [this, i](double energy_delta_mj) { OnChange(i, energy_delta_mj); });
    for (Listener& listener : listeners_) {
      if (!listener.active) continue;
      if (listener.dirty.size() <= i / kWordBits) {
        listener.dirty.resize(i / kWordBits + 1, 0);
      }
      listener.dirty[i / kWordBits] |= 1ULL << (i % kWordBits);
    }
  }
}

void ChangeTracker::OnChange(std::size_t index, double energy_delta_mj) {
  energy_mj_ += energy_delta_mj;
  for (Listener& listener : listeners_) {
    if (!listener.active) continue;
    if (listener.dirty.size() <= index / kWordBits) {
      listener.dirty.resize(index / kWordBits + 1, 0);
    }
    listener.dirty[index / kWordBits] |= 1ULL << (index % kWordBits);
  }
}

void ChangeTracker::Drain(const NodeList& nodes, int listener,
                          std::vector<std::size_t>& out) {
  Sync(nodes);
  if (listener < 0 || static_cast<std::size_t>(listener) >= listeners_.size()) {
    return;
  }
  Listener& l = listeners_[static_cast<std::size_t>(listener)];
  if (!l.active) return;
  std::vector<std::uint64_t>& dirty = l.dirty;
  for (std::size_t w = 0; w < dirty.size(); ++w) {
    std::uint64_t word = dirty[w];
    while (word != 0) {
      const auto bit =
          static_cast<std::size_t>(__builtin_ctzll(word));
      out.push_back(w * kWordBits + bit);
      word &= word - 1;
    }
    dirty[w] = 0;
  }
}

void ChangeTracker::MarkDirtyById(const NodeList& nodes,
                                  const std::string& node_id, int listener) {
  Sync(nodes);
  if (listener < 0 || static_cast<std::size_t>(listener) >= listeners_.size()) {
    return;
  }
  const auto it = id_to_index_.find(node_id);
  if (it == id_to_index_.end()) return;
  Listener& l = listeners_[static_cast<std::size_t>(listener)];
  if (!l.active) return;
  const std::size_t i = it->second;
  if (l.dirty.size() <= i / kWordBits) l.dirty.resize(i / kWordBits + 1, 0);
  l.dirty[i / kWordBits] |= 1ULL << (i % kWordBits);
}

double ChangeTracker::TotalEnergyMj(const NodeList& nodes) {
  Sync(nodes);
  return energy_mj_;
}

}  // namespace myrtus::continuum
