// Continuum compute nodes: a node owns one or more devices, a memory budget,
// a certified security level, and per-device FIFO execution queues driven by
// the simulation engine. Performance-monitoring counters (latency, energy,
// utilization) are exposed exactly as the paper's instrumented edge devices
// do (§III Monitoring & Observability).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "continuum/device.hpp"
#include "security/policy.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "util/status.hpp"

namespace myrtus::continuum {

enum class Layer : std::uint8_t { kEdge, kFog, kCloud };
std::string_view LayerName(Layer layer);

/// Completion report for one task execution on a node.
struct TaskReport {
  std::string node_id;
  std::string device_name;
  sim::SimTime queued;     // time spent waiting for the device
  sim::SimTime service;    // execution latency on the device
  double energy_mj = 0.0;
};

class ComputeNode {
 public:
  ComputeNode(sim::Engine& engine, std::string id, Layer layer,
              std::string kind, security::SecurityLevel level,
              std::uint64_t mem_capacity_mb);

  void AddDevice(Device device);

  [[nodiscard]] const std::string& id() const { return id_; }
  [[nodiscard]] Layer layer() const { return layer_; }
  [[nodiscard]] const std::string& kind() const { return kind_; }
  [[nodiscard]] security::SecurityLevel security_level() const { return level_; }
  [[nodiscard]] std::uint64_t mem_capacity_mb() const { return mem_capacity_mb_; }
  [[nodiscard]] std::uint64_t mem_allocated_mb() const { return mem_allocated_mb_; }
  [[nodiscard]] const std::vector<Device>& devices() const { return devices_; }
  /// Mutable device access bumps the change epoch: callers take it to change
  /// operating points (capacity / power), which observers must re-sample.
  Device& mutable_device(std::size_t i) {
    MarkChanged();
    return devices_[i];
  }

  /// Total abstract CPU capacity: sum over devices of units * speedup * GHz.
  [[nodiscard]] double CpuCapacity() const;

  /// Memory reservation used by the scheduler's bind step.
  util::Status ReserveMemory(std::uint64_t mb);
  void ReleaseMemory(std::uint64_t mb);

  /// Picks the best device for a demand (lowest latency estimate among
  /// devices; accelerable work prefers fabric devices).
  [[nodiscard]] std::size_t BestDeviceFor(const TaskDemand& demand) const;

  using CompletionFn = std::function<void(const TaskReport&)>;
  /// Enqueues `demand` on device `device_index` (FIFO per device). The
  /// completion callback fires at simulated finish time.
  void Submit(const TaskDemand& demand, std::size_t device_index,
              CompletionFn done);
  /// Enqueues on the best device.
  void Submit(const TaskDemand& demand, CompletionFn done);

  /// Node availability (failure injection). Down nodes reject submissions.
  void SetUp(bool up) {
    up_ = up;
    MarkChanged();
  }
  [[nodiscard]] bool up() const { return up_; }

  /// --- Change-epoch observation ----------------------------------------
  /// Monotonic counter bumped on every observable mutation: up/down flips,
  /// memory allocation, task submission/completion (queue depth, busy time,
  /// energy), device changes. Observers (MAPE Monitor) compare epochs to
  /// skip unchanged nodes instead of re-sampling the whole fleet.
  [[nodiscard]] std::uint64_t change_epoch() const { return change_epoch_; }
  /// Single listener, fanned out by continuum::ChangeTracker. `energy_delta`
  /// is nonzero only for task-completion energy accrual, letting the tracker
  /// maintain the fleet energy total incrementally.
  using ChangeHook = std::function<void(double energy_delta_mj)>;
  void SetChangeHook(ChangeHook hook) { change_hook_ = std::move(hook); }
  /// Bumps the epoch and notifies the hook. Public so ledgers living outside
  /// the node (scheduler allocation columns, peering reflections) can mark
  /// their node dirty through the same channel.
  void MarkChanged(double energy_delta_mj = 0.0) {
    ++change_epoch_;
    if (change_hook_) change_hook_(energy_delta_mj);
  }

  /// --- PMC-style counters ----------------------------------------------
  [[nodiscard]] std::uint64_t tasks_completed() const { return tasks_completed_; }
  [[nodiscard]] double total_energy_mj() const { return total_energy_mj_; }
  /// Busy fraction of a device since the node was created.
  [[nodiscard]] double Utilization(std::size_t device_index) const;
  [[nodiscard]] sim::SimTime created_at() const { return created_at_; }
  /// Total busy time accumulated on a device — with created_at(), the inputs
  /// of Utilization(), exposed so observers can predict when the (strictly
  /// decaying, absent new work) utilization crosses a planning threshold.
  [[nodiscard]] sim::SimTime BusyAccum(std::size_t device_index) const {
    return device_index < busy_accum_.size() ? busy_accum_[device_index]
                                             : sim::SimTime::Zero();
  }
  /// Instantaneous queue depth across all devices.
  [[nodiscard]] std::size_t QueueDepth() const;
  /// Idle-power energy accumulated up to `now` (integrates idle draw).
  [[nodiscard]] double IdleEnergyMj(sim::SimTime now) const;

 private:
  sim::Engine& engine_;
  std::string id_;
  Layer layer_;
  std::string kind_;
  security::SecurityLevel level_;
  std::uint64_t mem_capacity_mb_;
  std::uint64_t mem_allocated_mb_ = 0;
  bool up_ = true;

  std::vector<Device> devices_;
  std::vector<sim::SimTime> busy_until_;   // per device
  std::vector<sim::SimTime> busy_accum_;   // per device total busy time
  std::vector<std::size_t> queue_depth_;   // per device outstanding tasks
  sim::SimTime created_at_;

  std::uint64_t tasks_completed_ = 0;
  double total_energy_mj_ = 0.0;
  std::uint64_t change_epoch_ = 0;
  ChangeHook change_hook_;
};

}  // namespace myrtus::continuum
