// Builder for the Fig. 2 layered continuum: edge devices (HMPSoC+FPGA,
// RISC-V CCU, multicores) behind smart gateways, fog micro data centers
// (FMDC), and a cloud data center — all wired into one network topology with
// layer-appropriate latencies and bandwidths.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "continuum/change_tracker.hpp"
#include "continuum/node.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"

namespace myrtus::continuum {

struct InfrastructureSpec {
  int edge_hmpsoc = 2;   // FPGA-accelerated HMPSoCs
  int edge_riscv = 2;    // adaptive RISC-V nodes
  int edge_multicore = 2;
  int gateways = 1;      // smart gateways (fog)
  int fmdcs = 1;         // fog micro data centers
  int fmdc_servers = 4;  // disaggregated servers per FMDC (capacity)
  int cloud_servers = 16;

  // Link parameters (defaults approximate the paper's deployment classes).
  sim::SimTime edge_gw_latency = sim::SimTime::Millis(2);
  double edge_gw_bw_bps = 100e6;       // WiFi/Ethernet at the edge
  sim::SimTime gw_fmdc_latency = sim::SimTime::Millis(5);
  double gw_fmdc_bw_bps = 1e9;         // metro fiber
  sim::SimTime fmdc_cloud_latency = sim::SimTime::Millis(25);
  double fmdc_cloud_bw_bps = 10e9;     // WAN backbone
};

/// The instantiated infrastructure: nodes plus the network topology that
/// connects them. Node ids double as network host ids.
struct Infrastructure {
  std::vector<std::unique_ptr<ComputeNode>> nodes;
  net::Topology topology;

  [[nodiscard]] ComputeNode* FindNode(const std::string& id) const;
  [[nodiscard]] std::vector<ComputeNode*> NodesInLayer(Layer layer) const;
  /// The gateway each edge node homes to (first gateway by default).
  [[nodiscard]] std::string DefaultGateway() const;

  /// Lazily-created change tracker over this fleet. Heap-owned (shared_ptr)
  /// so node hooks capturing the tracker survive moves of this struct; the
  /// tracker itself never references back, so moving Infrastructure stays
  /// safe after creation.
  [[nodiscard]] ChangeTracker& change_tracker() {
    if (!tracker_) tracker_ = std::make_shared<ChangeTracker>();
    return *tracker_;
  }

 private:
  std::shared_ptr<ChangeTracker> tracker_;
};

/// Builds nodes and topology per `spec`. Security levels follow the paper's
/// deployment guidance: constrained edge devices are certified Low/Medium,
/// fog Medium/High, cloud High (Table II usage in §III).
Infrastructure BuildInfrastructure(sim::Engine& engine,
                                   const InfrastructureSpec& spec);

}  // namespace myrtus::continuum
