// Event-driven fleet observation: fans the per-node change hooks out to any
// number of listeners (one per MAPE agent observing the infrastructure), each
// with its own dirty bitmap, and maintains the fleet's cumulative active
// energy incrementally from the same events. Observers drain their bitmap
// once per iteration and visit only the nodes that actually mutated since
// their last drain — the watch-stream alternative to walking every node.
//
// The tracker is heap-allocated and owned by the Infrastructure through a
// shared_ptr so that node hooks (which capture the tracker pointer) survive
// moves of the Infrastructure value. It never holds a back-reference to the
// Infrastructure: callers pass the node list into every operation, and the
// tracker lazily attaches hooks to nodes appended since the previous call
// (append-only fleets — nodes are never removed in this codebase).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "continuum/node.hpp"

namespace myrtus::continuum {

class ChangeTracker {
 public:
  using NodeList = std::vector<std::unique_ptr<ComputeNode>>;

  /// Registers a listener; every already-tracked node starts dirty for it
  /// (a new observer has seen nothing yet). Listener ids are never reused.
  int AddListener(const NodeList& nodes);

  /// Deactivates a listener: its bitmap is released and mutation events stop
  /// fanning out to it. The id stays retired forever (never reused).
  void RemoveListener(int listener);

  /// Appends the indices of nodes dirty for `listener` (ascending — node
  /// insertion order, matching a full walk) and clears its bitmap. Newly
  /// appended nodes are attached and reported dirty here.
  void Drain(const NodeList& nodes, int listener, std::vector<std::size_t>& out);

  /// Marks one node dirty for `listener` by id (KB watch-event mirroring:
  /// an external write under /registry/nodes/ forces a re-observation).
  /// Unknown ids are ignored.
  void MarkDirtyById(const NodeList& nodes, const std::string& node_id,
                     int listener);

  /// Fleet cumulative task energy (mJ), maintained incrementally from the
  /// completion-event deltas: sum of each node's counter at attach time plus
  /// every delta since. Matches summing ComputeNode::total_energy_mj() over
  /// the fleet up to float re-association.
  double TotalEnergyMj(const NodeList& nodes);

  [[nodiscard]] std::size_t tracked_nodes() const { return synced_; }

 private:
  /// Attaches hooks to nodes [synced_, nodes.size()), marking them dirty for
  /// every listener and folding their energy counters into the base.
  void Sync(const NodeList& nodes);
  void OnChange(std::size_t index, double energy_delta_mj);

  struct Listener {
    std::vector<std::uint64_t> dirty;  // bitmap over node indices
    bool active = true;
  };

  std::size_t synced_ = 0;
  double energy_mj_ = 0.0;
  std::vector<Listener> listeners_;
  std::unordered_map<std::string, std::size_t> id_to_index_;
};

}  // namespace myrtus::continuum
