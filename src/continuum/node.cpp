#include "continuum/node.hpp"

#include <algorithm>
#include <limits>

namespace myrtus::continuum {

std::string_view LayerName(Layer layer) {
  switch (layer) {
    case Layer::kEdge: return "edge";
    case Layer::kFog: return "fog";
    case Layer::kCloud: return "cloud";
  }
  return "?";
}

ComputeNode::ComputeNode(sim::Engine& engine, std::string id, Layer layer,
                         std::string kind, security::SecurityLevel level,
                         std::uint64_t mem_capacity_mb)
    : engine_(engine),
      id_(std::move(id)),
      layer_(layer),
      kind_(std::move(kind)),
      level_(level),
      mem_capacity_mb_(mem_capacity_mb),
      created_at_(engine.Now()) {}

void ComputeNode::AddDevice(Device device) {
  devices_.push_back(std::move(device));
  busy_until_.push_back(engine_.Now());
  busy_accum_.push_back(sim::SimTime::Zero());
  queue_depth_.push_back(0);
  MarkChanged();
}

double ComputeNode::CpuCapacity() const {
  double total = 0.0;
  for (const Device& d : devices_) {
    total += static_cast<double>(d.parallel_units()) *
             d.active_point().speedup * d.active_point().clock_ghz;
  }
  return total;
}

util::Status ComputeNode::ReserveMemory(std::uint64_t mb) {
  if (mem_allocated_mb_ + mb > mem_capacity_mb_) {
    return util::Status::ResourceExhausted(id_ + ": out of memory");
  }
  mem_allocated_mb_ += mb;
  MarkChanged();
  return util::Status::Ok();
}

void ComputeNode::ReleaseMemory(std::uint64_t mb) {
  mem_allocated_mb_ -= std::min(mem_allocated_mb_, mb);
  MarkChanged();
}

std::size_t ComputeNode::BestDeviceFor(const TaskDemand& demand) const {
  std::size_t best = 0;
  auto best_latency = sim::SimTime::Nanos(std::numeric_limits<std::int64_t>::max());
  for (std::size_t i = 0; i < devices_.size(); ++i) {
    // Include current queue backlog so the node load-balances internally.
    const sim::SimTime wait =
        std::max(busy_until_[i], engine_.Now()) - engine_.Now();
    const sim::SimTime total = wait + devices_[i].Estimate(demand).latency;
    if (total < best_latency) {
      best_latency = total;
      best = i;
    }
  }
  return best;
}

void ComputeNode::Submit(const TaskDemand& demand, std::size_t device_index,
                         CompletionFn done) {
  if (!up_ || device_index >= devices_.size()) {
    // Report an infinite-latency failure marker by never calling back would
    // deadlock callers; instead deliver a zero-service report with the node
    // marked down via `node_id` suffix. Callers check node state first; this
    // is a defensive path.
    return;
  }
  const ExecutionEstimate est = devices_[device_index].Estimate(demand);
  const sim::SimTime now = engine_.Now();
  const sim::SimTime start = std::max(now, busy_until_[device_index]);
  const sim::SimTime finish = start + est.latency;
  busy_until_[device_index] = finish;
  busy_accum_[device_index] += est.latency;
  ++queue_depth_[device_index];
  MarkChanged();

  engine_.ScheduleAt(finish, [this, device_index, est, start, now,
                              done = std::move(done)] {
    --queue_depth_[device_index];
    ++tasks_completed_;
    total_energy_mj_ += est.energy_mj;
    MarkChanged(est.energy_mj);
    if (done) {
      TaskReport report;
      report.node_id = id_;
      report.device_name = devices_[device_index].name();
      report.queued = start - now;
      report.service = est.latency;
      report.energy_mj = est.energy_mj;
      done(report);
    }
  });
}

void ComputeNode::Submit(const TaskDemand& demand, CompletionFn done) {
  Submit(demand, BestDeviceFor(demand), std::move(done));
}

double ComputeNode::Utilization(std::size_t device_index) const {
  const sim::SimTime alive = engine_.Now() - created_at_;
  if (alive.ns <= 0 || device_index >= busy_accum_.size()) return 0.0;
  const double u = static_cast<double>(busy_accum_[device_index].ns) /
                   static_cast<double>(alive.ns);
  return std::min(u, 1.0);
}

std::size_t ComputeNode::QueueDepth() const {
  std::size_t total = 0;
  for (const std::size_t q : queue_depth_) total += q;
  return total;
}

double ComputeNode::IdleEnergyMj(sim::SimTime now) const {
  const double alive_s = (now - created_at_).ToSecondsF();
  double idle_mw = 0.0;
  for (const Device& d : devices_) idle_mw += d.active_point().power_idle_mw;
  return idle_mw * alive_s;
}

}  // namespace myrtus::continuum
