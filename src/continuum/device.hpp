// Device-level compute models for the heterogeneous continuum of Fig. 2:
// commercial multicores (big/LITTLE), FPGA-based accelerators with runtime
// reconfiguration and multiple operating points [3][26][29], and adaptive
// RISC-V cores with custom computing units [4].
//
// Substitution note (DESIGN.md): real HMPSoC/FPGA boards are modeled by
// cycle-budget execution with per-device clock/power parameters and, for the
// FPGA, bitstream-load costs and operating-point tables — exactly the metrics
// the paper's monitors expose (latency & energy via PMCs, §III).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/status.hpp"

namespace myrtus::continuum {

/// What a task asks of a device.
struct TaskDemand {
  std::uint64_t cycles = 0;       // work on a 1x-speed scalar core
  std::uint64_t bytes_in = 0;     // input to move to the device
  std::uint64_t bytes_out = 0;    // output to move back
  double parallel_fraction = 0.0; // Amdahl fraction exploitable by >1 units
  bool accelerable = false;       // has an accelerator kernel (FPGA/CCU)
};

/// Outcome of running a task on a device.
struct ExecutionEstimate {
  sim::SimTime latency;
  double energy_mj = 0.0;  // millijoules
};

/// One voltage/frequency (or accelerator-configuration) operating point,
/// the unit of runtime adaptation in [29]/[30] and the MDC-style
/// reconfigurable accelerators [26].
struct OperatingPoint {
  std::string name;
  double clock_ghz = 1.0;
  double power_active_mw = 1000.0;
  double power_idle_mw = 100.0;
  double speedup = 1.0;  // vs the 1x reference scalar core at 1 GHz
};

enum class DeviceKind : std::uint8_t {
  kCpuBig,
  kCpuLittle,
  kFpgaAccelerator,
  kRiscvCcu,   // RISC-V with custom compute units / reconfigurable overlay
  kServerCpu,  // fog/cloud server-class core
};
std::string_view DeviceKindName(DeviceKind kind);

/// A compute device with a set of operating points and (for reconfigurable
/// fabrics) loadable configurations.
class Device {
 public:
  Device(std::string name, DeviceKind kind, int parallel_units,
         std::vector<OperatingPoint> points);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] DeviceKind kind() const { return kind_; }
  [[nodiscard]] int parallel_units() const { return parallel_units_; }
  [[nodiscard]] const std::vector<OperatingPoint>& operating_points() const {
    return points_;
  }
  [[nodiscard]] const OperatingPoint& active_point() const {
    return points_[active_point_];
  }
  [[nodiscard]] std::size_t active_point_index() const { return active_point_; }

  /// Switches operating point (DVFS / accelerator mode). Near-instant for
  /// CPUs; reconfigurable fabrics pay `reconfigure_cost`.
  util::Status SetOperatingPoint(std::size_t index);
  [[nodiscard]] sim::SimTime reconfigure_cost() const { return reconfigure_cost_; }
  void set_reconfigure_cost(sim::SimTime cost) { reconfigure_cost_ = cost; }
  /// Number of reconfigurations performed so far (PMC-style counter).
  [[nodiscard]] std::uint64_t reconfigurations() const { return reconfigurations_; }

  /// Latency/energy to execute `demand` at the active operating point,
  /// including on-device memory movement at `membw_gbps`.
  [[nodiscard]] ExecutionEstimate Estimate(const TaskDemand& demand) const;
  /// Estimate at an arbitrary point (for DSE sweeps without mutating state).
  [[nodiscard]] ExecutionEstimate EstimateAt(const TaskDemand& demand,
                                             const OperatingPoint& point) const;

  void set_membw_gbps(double v) { membw_gbps_ = v; }
  [[nodiscard]] double membw_gbps() const { return membw_gbps_; }

  /// Accelerator affinity: how much faster accelerable work runs here
  /// (1.0 for plain CPUs; >1 for FPGA/CCU fabrics).
  void set_accel_factor(double v) { accel_factor_ = v; }
  [[nodiscard]] double accel_factor() const { return accel_factor_; }

 private:
  std::string name_;
  DeviceKind kind_;
  int parallel_units_;
  std::vector<OperatingPoint> points_;
  std::size_t active_point_ = 0;
  sim::SimTime reconfigure_cost_ = sim::SimTime::Zero();
  std::uint64_t reconfigurations_ = 0;
  double membw_gbps_ = 8.0;
  double accel_factor_ = 1.0;
};

/// Factory helpers for the device classes of Fig. 2.
Device MakeBigCore(const std::string& name);
Device MakeLittleCore(const std::string& name);
Device MakeFpgaAccelerator(const std::string& name);
Device MakeRiscvCcu(const std::string& name);
Device MakeServerCpu(const std::string& name, int cores, double ghz);

}  // namespace myrtus::continuum
