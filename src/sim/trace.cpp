#include "sim/trace.hpp"

#include <utility>

namespace myrtus::sim {
namespace {
const myrtus::util::RunningStat kEmptyStat{};
}

void Trace::Emit(SimTime at, std::string component, std::string event,
                 double value) {
  // Transparent probe with views: the steady state (key already present)
  // allocates nothing. Only a first-seen (component, event) pair copies the
  // strings into the map; the record then takes them by move.
  const std::pair<std::string_view, std::string_view> key{component, event};
  auto it = stats_.find(key);
  if (it == stats_.end()) {
    it = stats_.try_emplace({component, event}).first;
  }
  it->second.Add(value);
  if (!records_dropped_) {
    records_.push_back(TraceRecord{at, std::move(component), std::move(event), value});
  }
}

const util::RunningStat& Trace::StatFor(std::string_view component,
                                        std::string_view event) const {
  const auto it = stats_.find(std::make_pair(component, event));
  return it == stats_.end() ? kEmptyStat : it->second;
}

util::StatusOr<std::vector<TraceRecord>> Trace::Select(
    const std::string& event) const {
  if (records_dropped_) {
    return util::Status::FailedPrecondition(
        "per-record log was dropped (DropRecords); Select would silently "
        "miss earlier records — use CountOf/StatFor aggregates instead");
  }
  std::vector<TraceRecord> out;
  for (const TraceRecord& r : records_) {
    if (r.event == event) out.push_back(r);
  }
  return out;
}

std::size_t Trace::CountOf(const std::string& event) const {
  std::size_t n = 0;
  for (const auto& [key, stat] : stats_) {
    if (key.second == event) n += stat.count();
  }
  return n;
}

void Trace::Clear() {
  records_.clear();
  stats_.clear();
  records_dropped_ = false;
}

double Metrics::Get(std::string_view name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

}  // namespace myrtus::sim
