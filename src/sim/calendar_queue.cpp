#include "sim/calendar_queue.hpp"

#include <algorithm>
#include <utility>

namespace myrtus::sim {
namespace {

constexpr std::size_t kMinBuckets = 8;  // power of two, as all sizes are

/// Floor division for possibly-negative timestamps (b > 0).
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  return a >= 0 ? a / b : -((-a + b - 1) / b);
}

}  // namespace

CalendarQueue::CalendarQueue() : buckets_(kMinBuckets) {}

std::size_t CalendarQueue::BucketIndex(std::int64_t at_ns) const {
  // Power-of-two bucket count: masking the (floored) day number is the ring
  // modulo, correct for negative days in two's complement.
  return static_cast<std::size_t>(FloorDiv(at_ns, width_ns_)) &
         (buckets_.size() - 1);
}

void CalendarQueue::SeekTo(std::int64_t at_ns) {
  const std::int64_t day = FloorDiv(at_ns, width_ns_);
  cursor_ = static_cast<std::size_t>(day) & (buckets_.size() - 1);
  cursor_top_ns_ = (day + 1) * width_ns_;
}

void CalendarQueue::Push(QueuedEvent event) {
  if (size_ + 1 > buckets_.size() * 2) Resize(buckets_.size() * 2);
  if (size_ == 0 || event.at_ns < cursor_top_ns_ - width_ns_) {
    // Event lands before the current search window: reposition so the next
    // PopMin starts its day scan at (or before) this event. Moving the
    // window earlier preserves the invariant "no queued event precedes the
    // window start", which is what makes the forward day scan globally
    // minimal.
    SeekTo(event.at_ns);
  }
  buckets_[BucketIndex(event.at_ns)].push_back(std::move(event));
  ++size_;
}

bool CalendarQueue::PopMin(QueuedEvent& out) {
  if (size_ == 0) return false;
  const std::size_t nbuckets = buckets_.size();
  for (std::size_t hops = 0; hops < nbuckets; ++hops) {
    std::vector<QueuedEvent>& bucket = buckets_[cursor_];
    std::size_t best = bucket.size();
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      // Only events inside the current day window [top - width, top) belong
      // to this visit; later "years" hash to the same bucket but sort after
      // every event the remaining day scan can still produce.
      if (bucket[i].at_ns >= cursor_top_ns_) continue;
      if (best == bucket.size() || Before(bucket[i], bucket[best])) best = i;
    }
    if (best != bucket.size()) {
      out = std::move(bucket[best]);
      bucket[best] = std::move(bucket.back());
      bucket.pop_back();
      --size_;
      if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
        Resize(buckets_.size() / 2);
      }
      return true;
    }
    cursor_ = (cursor_ + 1) & (nbuckets - 1);
    cursor_top_ns_ += width_ns_;
  }

  // A full year produced nothing: the next event is more than
  // nbuckets * width away. Find it directly and jump the calendar there.
  const QueuedEvent* min_event = nullptr;
  for (const std::vector<QueuedEvent>& bucket : buckets_) {
    for (const QueuedEvent& e : bucket) {
      if (min_event == nullptr || Before(e, *min_event)) min_event = &e;
    }
  }
  SeekTo(min_event->at_ns);
  return PopMin(out);  // recursion depth 1: the seeked window now hits
}

void CalendarQueue::Resize(std::size_t nbuckets) {
  std::vector<QueuedEvent> events;
  events.reserve(size_);
  for (std::vector<QueuedEvent>& bucket : buckets_) {
    for (QueuedEvent& e : bucket) events.push_back(std::move(e));
    bucket.clear();
  }
  buckets_.assign(nbuckets, {});

  // Width from the live population's span: aims at ~1 event per day bucket.
  // Deterministic (a pure function of the queued set) and recomputed on
  // every resize, so the calendar tracks the simulation's event density.
  if (!events.empty()) {
    std::int64_t lo = events.front().at_ns;
    std::int64_t hi = lo;
    for (const QueuedEvent& e : events) {
      lo = std::min(lo, e.at_ns);
      hi = std::max(hi, e.at_ns);
    }
    width_ns_ = (hi - lo) / static_cast<std::int64_t>(events.size()) + 1;
    SeekTo(lo);
    for (QueuedEvent& e : events) {
      buckets_[BucketIndex(e.at_ns)].push_back(std::move(e));
    }
  } else {
    cursor_ = 0;  // keep the cursor in range of the new, smaller ring
    cursor_top_ns_ = width_ns_;
  }
}

}  // namespace myrtus::sim
