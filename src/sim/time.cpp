#include "sim/time.hpp"

#include <cmath>
#include <cstdio>

namespace myrtus::sim {

SimTime SimTime::FromSeconds(double s) {
  return {static_cast<std::int64_t>(std::llround(s * 1e9))};
}

std::string SimTime::ToString() const {
  char buf[48];
  const double abs_ns = std::abs(static_cast<double>(ns));
  if (abs_ns < 1e3) {
    std::snprintf(buf, sizeof buf, "%lldns", static_cast<long long>(ns));
  } else if (abs_ns < 1e6) {
    std::snprintf(buf, sizeof buf, "%.3fus", static_cast<double>(ns) * 1e-3);
  } else if (abs_ns < 1e9) {
    std::snprintf(buf, sizeof buf, "%.3fms", static_cast<double>(ns) * 1e-6);
  } else {
    std::snprintf(buf, sizeof buf, "%.3fs", static_cast<double>(ns) * 1e-9);
  }
  return buf;
}

}  // namespace myrtus::sim
