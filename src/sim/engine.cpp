#include "sim/engine.hpp"

#include <utility>

namespace myrtus::sim {

EventHandle Engine::ScheduleAt(SimTime when, Callback cb) {
  if (when < now_) when = now_;
  const std::uint64_t id = next_id_++;
  queue_.Push(QueuedEvent{when.ns, next_seq_++, id, std::move(cb)});
  return EventHandle{id};
}

EventHandle Engine::ScheduleAfter(SimTime delay, Callback cb) {
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventHandle Engine::SchedulePeriodic(SimTime period, Callback cb) {
  // A zero/negative period would re-fire forever at one timestamp and hang
  // Run()/RunUntil(); clamp to the finest representable tick instead.
  if (period.ns <= 0) period = SimTime::Nanos(1);
  const std::uint64_t id = next_id_++;
  periodic_.emplace(id, PeriodicTask{period, std::move(cb)});
  queue_.Push(QueuedEvent{(now_ + period).ns, next_seq_++, id,
                          [this, id] { FirePeriodic(id); }});
  return EventHandle{id};
}

void Engine::FirePeriodic(std::uint64_t id) {
  const auto it = periodic_.find(id);
  if (it == periodic_.end()) return;
  it->second.cb();
  // The callback itself may have cancelled the series.
  const auto again = periodic_.find(id);
  if (again == periodic_.end()) return;
  queue_.Push(QueuedEvent{(now_ + again->second.period).ns, next_seq_++, id,
                          [this, id] { FirePeriodic(id); }});
}

void Engine::Cancel(EventHandle h) {
  if (!h.valid()) return;
  if (periodic_.erase(h.id_) > 0) {
    // The in-flight marker event becomes a no-op via FirePeriodic's lookup.
    return;
  }
  cancelled_.insert(h.id_);
}

bool Engine::PopNext(QueuedEvent& out) {
  while (queue_.PopMin(out)) {
    const auto it = cancelled_.find(out.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    return true;
  }
  return false;
}

bool Engine::Step() {
  QueuedEvent ev;
  if (!PopNext(ev)) return false;
  now_ = SimTime::Nanos(ev.at_ns);
  ++executed_;
  ev.cb();
  return true;
}

std::size_t Engine::Run(std::size_t limit) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (n < limit && !stop_requested_ && Step()) ++n;
  return n;
}

std::size_t Engine::RunUntil(SimTime deadline) {
  stop_requested_ = false;
  std::size_t n = 0;
  while (!stop_requested_) {
    if (queue_.empty()) break;
    // Peek across tombstones without executing.
    QueuedEvent ev;
    if (!PopNext(ev)) break;
    if (ev.at_ns > deadline.ns) {
      // Put it back; it belongs to the future beyond this run. The original
      // seq rides along, so its FIFO position among equal timestamps holds.
      queue_.Push(std::move(ev));
      break;
    }
    now_ = SimTime::Nanos(ev.at_ns);
    ++executed_;
    ev.cb();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace myrtus::sim
