// Calendar-queue (bucketed timing-wheel) event queue for the simulation
// engine — Brown's classic O(1)-amortized structure, replacing the binary
// heap whose push/pop cost O(log n) per event in the measured hot path.
//
// Total order contract (what sim::Engine's determinism rides on): events pop
// strictly by (at_ns, seq) — earliest timestamp first, and FIFO within a
// timestamp via the monotonically increasing sequence number. The order is a
// pure function of the pushed set, never of bucket geometry: resizes and
// width changes only re-hash storage, they cannot reorder a pop.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace myrtus::sim {

/// One queued engine event. `seq` is assigned by the engine and breaks ties
/// at equal timestamps (FIFO); `id` keys cancellation tombstones.
struct QueuedEvent {
  std::int64_t at_ns = 0;
  std::uint64_t seq = 0;
  std::uint64_t id = 0;
  std::function<void()> cb;
};

class CalendarQueue {
 public:
  CalendarQueue();

  void Push(QueuedEvent event);
  /// Pops the minimum-(at_ns, seq) event into `out`; false when empty.
  bool PopMin(QueuedEvent& out);

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  /// Current bucket count (diagnostics / tests).
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }

 private:
  [[nodiscard]] std::size_t BucketIndex(std::int64_t at_ns) const;
  /// Re-hashes every event into `nbuckets` buckets with a width recomputed
  /// from the current event population's time span.
  void Resize(std::size_t nbuckets);
  /// Repositions the search cursor onto the bucket containing `at_ns`.
  void SeekTo(std::int64_t at_ns);
  /// True when `a` orders before `b` under (at_ns, seq).
  static bool Before(const QueuedEvent& a, const QueuedEvent& b) {
    if (a.at_ns != b.at_ns) return a.at_ns < b.at_ns;
    return a.seq < b.seq;
  }

  std::vector<std::vector<QueuedEvent>> buckets_;
  std::size_t size_ = 0;
  std::int64_t width_ns_ = 1;    // bucket (day) width
  std::size_t cursor_ = 0;       // bucket the search resumes from
  std::int64_t cursor_top_ns_ = 0;  // end of cursor_'s current day window
};

}  // namespace myrtus::sim
