// Fault injection for the continuum simulation. A ChaosController owns a set
// of named *targets* — anything with an inject/restore pair (a lossy link, a
// crashable Raft replica, a continuum device that can go down) — and drives
// them from scripted or seeded-random schedules. The controller is layer
// agnostic on purpose: it lives in sim/ and callers wire the hooks
// (Topology::mutable_link, RaftNode::Crash/Recover, Node::SetUp) as lambdas,
// so the same scheduler exercises every subsystem without sim/ depending on
// any of them. All randomness is drawn up-front on a dedicated stream, so a
// given seed yields a byte-identical fault timeline no matter how the rest
// of the simulation interleaves.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace myrtus::sim {

/// One recorded state transition of a chaos target.
struct ChaosEvent {
  SimTime at;
  std::string target;
  bool injected = false;  // true = fault injected, false = fault restored
};

class ChaosController {
 public:
  /// `trace` may be null; events are then only kept in the local timeline.
  ChaosController(Engine& engine, std::uint64_t seed, Trace* trace = nullptr);
  /// Scheduled fault events hold a shared liveness guard, not `this`: events
  /// still queued in the engine when the controller dies become inert no-ops
  /// instead of use-after-scope (the engine routinely outlives a scoped
  /// controller in benches and tests).
  ~ChaosController();
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  /// Registers a fault target. `inject` puts the target into its faulty
  /// state, `restore` heals it; both must be idempotent-friendly — the
  /// controller guarantees strict inject/restore alternation per target.
  void RegisterTarget(const std::string& name, std::function<void()> inject,
                      std::function<void()> restore);

  /// Scripted fault: inject at `start`, restore at `start + duration`.
  /// A non-positive duration injects permanently (until RestoreAll).
  void ScheduleFault(const std::string& target, SimTime start,
                     SimTime duration);

  /// Seeded-random schedule: alternating healthy/faulty phases with
  /// exponentially distributed lengths (means `mean_up` / `mean_down`),
  /// starting healthy at `start`, until `horizon`. All phase boundaries are
  /// drawn NOW from the controller's own stream, so the schedule is fixed at
  /// call time regardless of event interleaving.
  void ScheduleRandomFaults(const std::string& target, SimTime start,
                            SimTime horizon, SimTime mean_up,
                            SimTime mean_down);

  /// Heals every currently-faulty target immediately.
  void RestoreAll();

  [[nodiscard]] bool IsFaulty(const std::string& target) const;
  [[nodiscard]] std::size_t active_faults() const { return active_faults_; }
  [[nodiscard]] std::uint64_t injections() const { return injections_; }
  [[nodiscard]] std::uint64_t restores() const { return restores_; }

  [[nodiscard]] const std::vector<ChaosEvent>& timeline() const {
    return timeline_;
  }
  /// One line per transition — "<ns> <target> inject|restore" — the artifact
  /// the determinism acceptance check compares byte-for-byte across seeds.
  [[nodiscard]] std::string TimelineString() const;

 private:
  struct Target {
    std::function<void()> inject;
    std::function<void()> restore;
    bool faulty = false;
  };

  void Inject(const std::string& name);
  void Restore(const std::string& name);

  /// Back-pointer shared with every scheduled engine event; the destructor
  /// nulls it, detaching events that have not fired yet.
  struct LifetimeGuard {
    ChaosController* self = nullptr;
  };

  Engine& engine_;
  std::shared_ptr<LifetimeGuard> guard_;
  util::Rng rng_;
  Trace* trace_;
  std::map<std::string, Target> targets_;
  std::vector<ChaosEvent> timeline_;
  std::size_t active_faults_ = 0;
  std::uint64_t injections_ = 0;
  std::uint64_t restores_ = 0;
};

}  // namespace myrtus::sim
