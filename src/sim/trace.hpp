// Trace & metric collection — the simulator-side half of the paper's
// "Monitoring and Observability" building block. Components emit typed
// records; experiments read them back as time series or aggregates. Counter
// and gauge writes are mirrored into the telemetry registry (prefixed
// "myrtus_sim_") when telemetry is enabled, so legacy call sites show up in
// Prometheus dumps without changes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace myrtus::sim {

/// One trace record: (time, component, event, numeric value).
struct TraceRecord {
  SimTime at;
  std::string component;
  std::string event;
  double value = 0.0;
};

/// Transparent ordering over (component, event) keys: lets the hot Emit()
/// path probe the stats map with string_views — no pair-of-strings temporary
/// per record. Strings are only copied the first time a key is seen.
struct TraceKeyLess {
  using is_transparent = void;
  template <typename P1, typename P2>
  bool operator()(const P1& a, const P2& b) const {
    const std::string_view af(a.first), bf(b.first);
    if (af != bf) return af < bf;
    return std::string_view(a.second) < std::string_view(b.second);
  }
};

/// Append-only trace with per-(component,event) aggregate stats.
class Trace {
 public:
  void Emit(SimTime at, std::string component, std::string event, double value = 0.0);

  /// Capacity hint for the per-record log: experiments that know their event
  /// volume up front (benches, long MAPE runs) pre-size the vector once
  /// instead of paying the doubling-reallocation churn while tracing.
  void Reserve(std::size_t record_capacity) { records_.reserve(record_capacity); }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  /// Aggregate over all records with the given component/event pair.
  [[nodiscard]] const util::RunningStat& StatFor(std::string_view component,
                                                 std::string_view event) const;
  /// All records matching an event name across components. After
  /// DropRecords() the per-record log no longer exists, so selection would
  /// silently miss everything emitted before the drop — that is reported as
  /// FAILED_PRECONDITION instead of an empty result. CountOf()/StatFor()
  /// keep working: they read the aggregates, which survive the drop.
  [[nodiscard]] util::StatusOr<std::vector<TraceRecord>> Select(
      const std::string& event) const;
  /// Number of records for an event.
  [[nodiscard]] std::size_t CountOf(const std::string& event) const;

  void Clear();
  /// Keep aggregates but drop the per-record log (memory control in long runs).
  void DropRecords() { records_.clear(); records_dropped_ = true; }
  [[nodiscard]] bool records_dropped() const { return records_dropped_; }

 private:
  std::vector<TraceRecord> records_;
  std::map<std::pair<std::string, std::string>, util::RunningStat, TraceKeyLess>
      stats_;
  bool records_dropped_ = false;
};

/// Counter/gauge registry for cheap always-on metrics. Writes are shimmed
/// into telemetry::Global().metrics when telemetry is enabled.
class Metrics {
 public:
  void Inc(std::string_view name, double delta = 1.0) {
    Slot(name) += delta;
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add(Prefixed(name), delta);
    }
  }
  void Set(std::string_view name, double v) {
    Slot(name) = v;
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Set(Prefixed(name), v);
    }
  }
  [[nodiscard]] double Get(std::string_view name) const;
  [[nodiscard]] const std::map<std::string, double, std::less<>>& all() const {
    return values_;
  }

 private:
  /// Transparent lookup first (no allocation on the steady-state hit); the
  /// key string is materialized only when the gauge is first written.
  double& Slot(std::string_view name) {
    const auto it = values_.find(name);
    if (it != values_.end()) return it->second;
    return values_.emplace(std::string(name), 0.0).first->second;
  }
  static std::string Prefixed(std::string_view name) {
    std::string full;
    full.reserve(sizeof("myrtus_sim_") - 1 + name.size());
    full.append("myrtus_sim_").append(name);
    return full;
  }

  std::map<std::string, double, std::less<>> values_;
};

}  // namespace myrtus::sim
