// Trace & metric collection — the simulator-side half of the paper's
// "Monitoring and Observability" building block. Components emit typed
// records; experiments read them back as time series or aggregates. Counter
// and gauge writes are mirrored into the telemetry registry (prefixed
// "myrtus_sim_") when telemetry is enabled, so legacy call sites show up in
// Prometheus dumps without changes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/status.hpp"

namespace myrtus::sim {

/// One trace record: (time, component, event, numeric value).
struct TraceRecord {
  SimTime at;
  std::string component;
  std::string event;
  double value = 0.0;
};

/// Append-only trace with per-(component,event) aggregate stats.
class Trace {
 public:
  void Emit(SimTime at, std::string component, std::string event, double value = 0.0);

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  /// Aggregate over all records with the given component/event pair.
  [[nodiscard]] const util::RunningStat& StatFor(const std::string& component,
                                                 const std::string& event) const;
  /// All records matching an event name across components. After
  /// DropRecords() the per-record log no longer exists, so selection would
  /// silently miss everything emitted before the drop — that is reported as
  /// FAILED_PRECONDITION instead of an empty result. CountOf()/StatFor()
  /// keep working: they read the aggregates, which survive the drop.
  [[nodiscard]] util::StatusOr<std::vector<TraceRecord>> Select(
      const std::string& event) const;
  /// Number of records for an event.
  [[nodiscard]] std::size_t CountOf(const std::string& event) const;

  void Clear();
  /// Keep aggregates but drop the per-record log (memory control in long runs).
  void DropRecords() { records_.clear(); records_dropped_ = true; }
  [[nodiscard]] bool records_dropped() const { return records_dropped_; }

 private:
  std::vector<TraceRecord> records_;
  std::map<std::pair<std::string, std::string>, util::RunningStat> stats_;
  bool records_dropped_ = false;
};

/// Counter/gauge registry for cheap always-on metrics. Writes are shimmed
/// into telemetry::Global().metrics when telemetry is enabled.
class Metrics {
 public:
  void Inc(const std::string& name, double delta = 1.0) {
    values_[name] += delta;
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add("myrtus_sim_" + name, delta);
    }
  }
  void Set(const std::string& name, double v) {
    values_[name] = v;
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Set("myrtus_sim_" + name, v);
    }
  }
  [[nodiscard]] double Get(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, double>& all() const { return values_; }

 private:
  std::map<std::string, double> values_;
};

}  // namespace myrtus::sim
