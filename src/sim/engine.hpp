// Deterministic discrete-event simulation engine. Single-threaded by design:
// determinism matters more than parallel speed for orchestration experiments,
// and ties are broken by a monotonically increasing sequence number so two
// runs with the same seed produce identical traces. The event store is a
// calendar queue (sim/calendar_queue.hpp): O(1) amortized push/pop versus the
// binary heap's O(log n), with the identical (time, seq) pop order.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/calendar_queue.hpp"
#include "sim/time.hpp"

namespace myrtus::sim {

/// Handle used to cancel a scheduled event. Cancellation is O(1): the event
/// stays in the queue but is skipped when popped.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Engine;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

class Engine {
 public:
  using Callback = std::function<void()>;

  /// Current simulated time.
  [[nodiscard]] SimTime Now() const { return now_; }

  /// Schedules `cb` at absolute time `when` (clamped to Now() if in the
  /// past). Returns a handle usable with Cancel().
  EventHandle ScheduleAt(SimTime when, Callback cb);
  /// Schedules `cb` after the given delay.
  EventHandle ScheduleAfter(SimTime delay, Callback cb);
  /// Schedules `cb` every `period`, starting after `period`. The callback
  /// keeps firing until its handle is cancelled or the engine stops. A
  /// zero/negative period is clamped to 1 ns (an unclamped value would loop
  /// forever at a single timestamp).
  EventHandle SchedulePeriodic(SimTime period, Callback cb);

  /// Marks an event as cancelled; safe to call on fired/invalid handles.
  void Cancel(EventHandle h);

  /// Runs events until the queue drains or `limit` events have fired.
  /// Returns the number of events executed.
  std::size_t Run(std::size_t limit = SIZE_MAX);
  /// Runs events with timestamp <= deadline; the clock ends at exactly
  /// `deadline` even if the queue drained earlier.
  std::size_t RunUntil(SimTime deadline);
  /// Executes exactly one event if available. Returns false on empty queue.
  bool Step();

  /// Requests that Run()/RunUntil() return after the current event.
  void Stop() { stop_requested_ = true; }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

 private:
  bool PopNext(QueuedEvent& out);
  void FirePeriodic(std::uint64_t id);

  struct PeriodicTask {
    SimTime period;
    Callback cb;
  };

  CalendarQueue queue_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstones, erased on pop
  std::unordered_map<std::uint64_t, PeriodicTask> periodic_;
  SimTime now_ = SimTime::Zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace myrtus::sim
