// Simulated time. The whole continuum simulation runs on a single logical
// clock with nanosecond resolution; wall-clock never leaks into results, so
// every experiment is bit-reproducible given a seed.
#pragma once

#include <cstdint>
#include <string>

namespace myrtus::sim {

/// Nanosecond-resolution simulated time point / duration.
struct SimTime {
  std::int64_t ns = 0;

  static constexpr SimTime Zero() { return {0}; }
  static constexpr SimTime Nanos(std::int64_t v) { return {v}; }
  static constexpr SimTime Micros(std::int64_t v) { return {v * 1'000}; }
  static constexpr SimTime Millis(std::int64_t v) { return {v * 1'000'000}; }
  static constexpr SimTime Seconds(std::int64_t v) { return {v * 1'000'000'000}; }
  /// From fractional seconds (rounded to nearest nanosecond).
  static SimTime FromSeconds(double s);

  [[nodiscard]] double ToSecondsF() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] double ToMillisF() const { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] double ToMicrosF() const { return static_cast<double>(ns) * 1e-3; }

  /// "12.345ms"-style rendering for traces.
  [[nodiscard]] std::string ToString() const;

  friend constexpr SimTime operator+(SimTime a, SimTime b) { return {a.ns + b.ns}; }
  friend constexpr SimTime operator-(SimTime a, SimTime b) { return {a.ns - b.ns}; }
  constexpr SimTime& operator+=(SimTime o) { ns += o.ns; return *this; }
  constexpr SimTime& operator-=(SimTime o) { ns -= o.ns; return *this; }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) { return {a.ns * k}; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
};

}  // namespace myrtus::sim
