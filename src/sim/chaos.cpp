#include "sim/chaos.hpp"

#include <algorithm>
#include <utility>

#include "telemetry/telemetry.hpp"

namespace myrtus::sim {

ChaosController::ChaosController(Engine& engine, std::uint64_t seed,
                                 Trace* trace)
    : engine_(engine),
      guard_(std::make_shared<LifetimeGuard>(LifetimeGuard{this})),
      rng_(seed, "chaos"),
      trace_(trace) {}

ChaosController::~ChaosController() { guard_->self = nullptr; }

void ChaosController::RegisterTarget(const std::string& name,
                                     std::function<void()> inject,
                                     std::function<void()> restore) {
  targets_[name] = Target{std::move(inject), std::move(restore), false};
}

void ChaosController::ScheduleFault(const std::string& target, SimTime start,
                                    SimTime duration) {
  engine_.ScheduleAt(start, [guard = guard_, target] {
    if (guard->self != nullptr) guard->self->Inject(target);
  });
  if (duration > SimTime::Zero()) {
    engine_.ScheduleAt(start + duration, [guard = guard_, target] {
      if (guard->self != nullptr) guard->self->Restore(target);
    });
  }
}

void ChaosController::ScheduleRandomFaults(const std::string& target,
                                           SimTime start, SimTime horizon,
                                           SimTime mean_up,
                                           SimTime mean_down) {
  // Draw the whole alternating up/down phase sequence now; scheduling the
  // callbacks later must not consume randomness, or two runs that interleave
  // other chaos calls differently would diverge.
  SimTime t = start;
  bool faulty = false;
  while (t < horizon) {
    const double mean =
        static_cast<double>(faulty ? mean_down.ns : mean_up.ns);
    const double phase = rng_.NextExponential(mean > 0.0 ? 1.0 / mean : 1.0);
    t += SimTime::Nanos(
        std::max<std::int64_t>(1, static_cast<std::int64_t>(phase)));
    if (t >= horizon) break;
    faulty = !faulty;
    if (faulty) {
      engine_.ScheduleAt(t, [guard = guard_, target] {
        if (guard->self != nullptr) guard->self->Inject(target);
      });
    } else {
      engine_.ScheduleAt(t, [guard = guard_, target] {
        if (guard->self != nullptr) guard->self->Restore(target);
      });
    }
  }
  // Never leave a target faulty past the horizon: the experiment's cooldown
  // phase measures recovery, not a dangling fault.
  if (faulty) {
    engine_.ScheduleAt(horizon, [guard = guard_, target] {
      if (guard->self != nullptr) guard->self->Restore(target);
    });
  }
}

void ChaosController::RestoreAll() {
  for (auto& [name, target] : targets_) {
    if (target.faulty) Restore(name);
  }
}

bool ChaosController::IsFaulty(const std::string& target) const {
  const auto it = targets_.find(target);
  return it != targets_.end() && it->second.faulty;
}

void ChaosController::Inject(const std::string& name) {
  const auto it = targets_.find(name);
  if (it == targets_.end() || it->second.faulty) return;
  it->second.faulty = true;
  ++active_faults_;
  ++injections_;
  if (it->second.inject) it->second.inject();
  timeline_.push_back({engine_.Now(), name, true});
  if (trace_) trace_->Emit(engine_.Now(), "chaos", "inject:" + name, 1.0);
  if (telemetry::Enabled()) {
    auto& tel = telemetry::Global();
    tel.metrics.Add("myrtus_chaos_injections_total", 1.0, {{"target", name}});
    tel.metrics.Set("myrtus_chaos_active_faults",
                    static_cast<double>(active_faults_));
    // Fault boundary: stamp the ring, annotate whatever span is live, and —
    // when dumps are armed — snapshot the seconds leading up to the fault.
    tel.recorder.RecordEvent("chaos.inject", name, engine_.Now().ns);
    if (tel.tracer.current().valid()) {
      tel.tracer.SetAttribute(tel.tracer.current(), "chaos.inject", name);
    }
    // LINT: discard(the dump path is advisory; the event is already recorded)
    (void)tel.recorder.Trigger("chaos.inject:" + name, engine_.Now().ns);
  }
}

void ChaosController::Restore(const std::string& name) {
  const auto it = targets_.find(name);
  if (it == targets_.end() || !it->second.faulty) return;
  it->second.faulty = false;
  --active_faults_;
  ++restores_;
  if (it->second.restore) it->second.restore();
  timeline_.push_back({engine_.Now(), name, false});
  if (trace_) trace_->Emit(engine_.Now(), "chaos", "restore:" + name, 1.0);
  if (telemetry::Enabled()) {
    auto& tel = telemetry::Global();
    tel.metrics.Add("myrtus_chaos_restores_total", 1.0, {{"target", name}});
    tel.metrics.Set("myrtus_chaos_active_faults",
                    static_cast<double>(active_faults_));
    tel.recorder.RecordEvent("chaos.restore", name, engine_.Now().ns);
    if (tel.tracer.current().valid()) {
      tel.tracer.SetAttribute(tel.tracer.current(), "chaos.restore", name);
    }
  }
}

std::string ChaosController::TimelineString() const {
  std::string out;
  for (const ChaosEvent& ev : timeline_) {
    out += std::to_string(ev.at.ns);
    out += ' ';
    out += ev.target;
    out += ev.injected ? " inject\n" : " restore\n";
  }
  return out;
}

}  // namespace myrtus::sim
