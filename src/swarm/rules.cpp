#include "swarm/rules.hpp"

#include <algorithm>

namespace myrtus::swarm {

std::size_t RuleSpec::TableSize() const {
  std::size_t size = 1;
  for (const int levels : feature_levels) {
    size *= static_cast<std::size_t>(std::max(1, levels));
  }
  return size;
}

std::size_t RuleSpec::StateIndex(const std::vector<int>& features) const {
  std::size_t index = 0;
  for (std::size_t i = 0; i < feature_levels.size(); ++i) {
    const int levels = std::max(1, feature_levels[i]);
    const int f = i < features.size()
                      ? std::clamp(features[i], 0, levels - 1)
                      : 0;
    index = index * static_cast<std::size_t>(levels) + static_cast<std::size_t>(f);
  }
  return index;
}

RulePolicy::RulePolicy(RuleSpec spec, std::vector<int> table)
    : spec_(std::move(spec)), table_(std::move(table)) {
  table_.resize(spec_.TableSize(), 0);
}

RulePolicy RulePolicy::Random(const RuleSpec& spec, util::Rng& rng) {
  std::vector<int> table(spec.TableSize());
  for (int& a : table) {
    a = static_cast<int>(rng.NextBounded(static_cast<std::uint64_t>(spec.actions)));
  }
  return RulePolicy(spec, std::move(table));
}

int RulePolicy::Act(const std::vector<int>& features) const {
  return table_[spec_.StateIndex(features)];
}

EvolutionResult EvolveRules(
    const RuleSpec& spec,
    const std::function<double(const RulePolicy&)>& fitness, util::Rng& rng,
    const GaConfig& config) {
  struct Individual {
    RulePolicy policy;
    double fitness;
  };
  std::vector<Individual> population;
  population.reserve(static_cast<std::size_t>(config.population));

  EvolutionResult result{RulePolicy(spec, {}), -1e300, {}, 0};
  for (int i = 0; i < config.population; ++i) {
    RulePolicy p = RulePolicy::Random(spec, rng);
    const double f = fitness(p);
    ++result.evaluations;
    population.push_back(Individual{std::move(p), f});
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* best = nullptr;
    for (int i = 0; i < config.tournament; ++i) {
      const Individual& cand =
          population[rng.NextBounded(population.size())];
      if (best == nullptr || cand.fitness > best->fitness) best = &cand;
    }
    return *best;
  };

  for (int gen = 0; gen < config.generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [](const Individual& a, const Individual& b) {
                return a.fitness > b.fitness;
              });
    if (population.front().fitness > result.best_fitness) {
      result.best_fitness = population.front().fitness;
      result.best = population.front().policy;
    }
    result.fitness_history.push_back(population.front().fitness);

    std::vector<Individual> next;
    next.reserve(population.size());
    for (int e = 0; e < config.elites && e < static_cast<int>(population.size());
         ++e) {
      next.push_back(population[static_cast<std::size_t>(e)]);
    }
    while (next.size() < population.size()) {
      const Individual& a = tournament_pick();
      const Individual& b = tournament_pick();
      // Uniform crossover + mutation.
      std::vector<int> child_table(a.policy.table().size());
      for (std::size_t i = 0; i < child_table.size(); ++i) {
        child_table[i] = rng.NextBool() ? a.policy.table()[i] : b.policy.table()[i];
        if (rng.NextBool(config.mutation_rate)) {
          child_table[i] = static_cast<int>(
              rng.NextBounded(static_cast<std::uint64_t>(spec.actions)));
        }
      }
      RulePolicy child(spec, std::move(child_table));
      const double f = fitness(child);
      ++result.evaluations;
      next.push_back(Individual{std::move(child), f});
    }
    population = std::move(next);
  }
  // Final sweep.
  for (const Individual& ind : population) {
    if (ind.fitness > result.best_fitness) {
      result.best_fitness = ind.fitness;
      result.best = ind.policy;
    }
  }
  return result;
}

}  // namespace myrtus::swarm
