// Workload-to-node placement as a combinatorial optimization problem, with
// the solver portfolio §IV sketches for the MIRTO Manager: greedy and random
// baselines, exhaustive search (ground truth at small sizes), PSO on a
// continuous relaxation, and Ant Colony Optimization on the assignment graph.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::swarm {

/// One task to place.
struct PlacementTask {
  double cpu = 0.0;
  double mem_mb = 0.0;
  int min_security = 0;
  bool needs_accelerator = false;
  double traffic_kbps = 0.0;  // data produced toward its consumer
};

/// One candidate node.
struct PlacementNode {
  std::string id;
  double cpu_capacity = 0.0;
  double mem_capacity_mb = 0.0;
  int security_level = 0;
  bool has_accelerator = false;
  double power_mw_per_cpu = 0.0;   // energy proxy
  double latency_to_consumer_ms = 0.0;
};

struct PlacementProblem {
  std::vector<PlacementTask> tasks;
  std::vector<PlacementNode> nodes;
  double energy_weight = 1.0;
  double latency_weight = 1.0;
  double balance_weight = 0.25;

  /// Cost of an assignment (task i -> assignment[i]); infeasible assignments
  /// (capacity/security/accelerator violations) cost +infinity-ish penalties
  /// so every solver can rank partial feasibility.
  [[nodiscard]] double Cost(const std::vector<int>& assignment) const;
  [[nodiscard]] bool Feasible(const std::vector<int>& assignment) const;
};

struct PlacementSolution {
  std::vector<int> assignment;  // tasks.size() entries, node index each
  double cost = 0.0;
  int evaluations = 0;
};

/// Best-fit greedy: tasks in descending cpu order, each to the feasible node
/// with the lowest marginal cost.
PlacementSolution SolveGreedy(const PlacementProblem& problem);
/// Uniform random feasible-ish assignment (baseline).
PlacementSolution SolveRandom(const PlacementProblem& problem, util::Rng& rng);
/// Exhaustive search. Only for tasks^nodes <= ~2e6 states; returns
/// INVALID_ARGUMENT above that.
util::StatusOr<PlacementSolution> SolveExhaustive(const PlacementProblem& problem);
/// PSO over a continuous relaxation (positions rounded to node indices).
PlacementSolution SolvePso(const PlacementProblem& problem, util::Rng& rng,
                           int particles = 32, int iterations = 80);
/// Ant colony optimization with pheromones on (task, node) pairs.
PlacementSolution SolveAco(const PlacementProblem& problem, util::Rng& rng,
                           int ants = 24, int iterations = 60,
                           double evaporation = 0.35);

}  // namespace myrtus::swarm
