// FREVO-style evolutionary synthesis of local rules for swarm agents (§V:
// "FREVO generates the local rules for the swarm agents to be used within the
// MIRTO Cognitive Engine"). A rule policy is a lookup table from discretized
// observations to actions; a genetic algorithm evolves tables against a
// user-supplied fitness (typically a DynAA-style what-if simulation).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::swarm {

/// Shape of the observation/action space.
struct RuleSpec {
  std::vector<int> feature_levels;  // cardinality of each discretized feature
  int actions = 2;

  [[nodiscard]] std::size_t TableSize() const;
  /// Row index for a feature vector (each features[i] in [0, levels[i])).
  [[nodiscard]] std::size_t StateIndex(const std::vector<int>& features) const;
};

/// A concrete rule table: one action per discretized state.
class RulePolicy {
 public:
  RulePolicy(RuleSpec spec, std::vector<int> table);
  /// Uniformly random policy.
  static RulePolicy Random(const RuleSpec& spec, util::Rng& rng);

  [[nodiscard]] int Act(const std::vector<int>& features) const;
  [[nodiscard]] const RuleSpec& spec() const { return spec_; }
  [[nodiscard]] const std::vector<int>& table() const { return table_; }
  std::vector<int>& mutable_table() { return table_; }

 private:
  RuleSpec spec_;
  std::vector<int> table_;
};

struct GaConfig {
  int population = 32;
  int generations = 40;
  double mutation_rate = 0.05;
  int tournament = 3;
  int elites = 2;
};

struct EvolutionResult {
  RulePolicy best;
  double best_fitness = 0.0;
  std::vector<double> fitness_history;  // best per generation
  int evaluations = 0;
};

/// Maximizes `fitness` over rule tables.
EvolutionResult EvolveRules(const RuleSpec& spec,
                            const std::function<double(const RulePolicy&)>& fitness,
                            util::Rng& rng, const GaConfig& config = {});

}  // namespace myrtus::swarm
