#include "swarm/placement.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "swarm/pso.hpp"
#include "util/parallel.hpp"

namespace myrtus::swarm {
namespace {

constexpr double kViolationPenalty = 1e6;

}  // namespace

double PlacementProblem::Cost(const std::vector<int>& assignment) const {
  if (assignment.size() != tasks.size()) return kViolationPenalty * 1e3;
  std::vector<double> cpu_used(nodes.size(), 0.0);
  std::vector<double> mem_used(nodes.size(), 0.0);
  double cost = 0.0;

  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const int ni = assignment[t];
    if (ni < 0 || static_cast<std::size_t>(ni) >= nodes.size()) {
      cost += kViolationPenalty;
      continue;
    }
    const PlacementTask& task = tasks[t];
    const PlacementNode& node = nodes[static_cast<std::size_t>(ni)];
    if (node.security_level < task.min_security) cost += kViolationPenalty;
    if (task.needs_accelerator && !node.has_accelerator) cost += kViolationPenalty;
    cpu_used[static_cast<std::size_t>(ni)] += task.cpu;
    mem_used[static_cast<std::size_t>(ni)] += task.mem_mb;
    // Energy: cpu demand * node power proxy. Latency: traffic-weighted
    // distance to the consumer.
    cost += energy_weight * task.cpu * node.power_mw_per_cpu * 1e-3;
    cost += latency_weight * task.traffic_kbps * node.latency_to_consumer_ms * 1e-3;
  }
  double imbalance = 0.0;
  for (std::size_t n = 0; n < nodes.size(); ++n) {
    if (cpu_used[n] > nodes[n].cpu_capacity) {
      cost += kViolationPenalty * (1.0 + cpu_used[n] - nodes[n].cpu_capacity);
    }
    if (mem_used[n] > nodes[n].mem_capacity_mb) cost += kViolationPenalty;
    const double util =
        nodes[n].cpu_capacity > 0 ? cpu_used[n] / nodes[n].cpu_capacity : 0.0;
    imbalance += util * util;
  }
  cost += balance_weight * imbalance;
  return cost;
}

bool PlacementProblem::Feasible(const std::vector<int>& assignment) const {
  return Cost(assignment) < kViolationPenalty;
}

PlacementSolution SolveGreedy(const PlacementProblem& problem) {
  PlacementSolution sol;
  sol.assignment.assign(problem.tasks.size(), -1);
  std::vector<std::size_t> order(problem.tasks.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return problem.tasks[a].cpu > problem.tasks[b].cpu;
  });

  for (const std::size_t t : order) {
    // Candidate costs fan out across the pool (each shard probes on its own
    // copy of the partial assignment); the argmin folds serially with strict
    // <, so the first-lowest-node-index winner of the sequential loop is
    // preserved exactly.
    std::vector<double> costs(problem.nodes.size());
    util::ParallelFor(problem.nodes.size(), [&](const util::Shard& shard) {
      std::vector<int> probe = sol.assignment;
      for (std::size_t n = shard.begin; n < shard.end; ++n) {
        probe[t] = static_cast<int>(n);
        costs[n] = problem.Cost(probe);
      }
    });
    double best_cost = std::numeric_limits<double>::infinity();
    int best_node = -1;
    for (std::size_t n = 0; n < problem.nodes.size(); ++n) {
      ++sol.evaluations;
      if (costs[n] < best_cost) {
        best_cost = costs[n];
        best_node = static_cast<int>(n);
      }
    }
    sol.assignment[t] = best_node;
  }
  sol.cost = problem.Cost(sol.assignment);
  return sol;
}

PlacementSolution SolveRandom(const PlacementProblem& problem, util::Rng& rng) {
  PlacementSolution sol;
  sol.assignment.resize(problem.tasks.size());
  for (int& a : sol.assignment) {
    a = static_cast<int>(rng.NextBounded(problem.nodes.size()));
  }
  sol.cost = problem.Cost(sol.assignment);
  sol.evaluations = 1;
  return sol;
}

util::StatusOr<PlacementSolution> SolveExhaustive(const PlacementProblem& problem) {
  const std::size_t n = problem.nodes.size();
  const std::size_t t = problem.tasks.size();
  double states = 1.0;
  for (std::size_t i = 0; i < t; ++i) {
    states *= static_cast<double>(n);
    if (states > 2e6) {
      return util::Status::InvalidArgument(
          "exhaustive placement: state space too large");
    }
  }
  PlacementSolution best;
  best.cost = std::numeric_limits<double>::infinity();
  if (n == 0) {
    // Degenerate instance: the odometer loop still visited the all-zero
    // assignment exactly once, so keep doing that (it scores pure penalty).
    best.assignment.assign(t, 0);
    best.cost = problem.Cost(best.assignment);
    best.evaluations = 1;
    return best;
  }

  // The odometer visited assignments in base-n order with task 0 as the
  // least-significant digit; state index i decodes to assignment[k] =
  // (i / n^k) % n, the same sequence. Each shard tracks its first strict
  // minimum; folding shard minima in shard order with strict < reproduces
  // the sequential first-global-minimum winner.
  const std::size_t total = static_cast<std::size_t>(states);
  const std::size_t shards = util::ParallelShardCount(total);
  std::vector<double> shard_cost(shards,
                                 std::numeric_limits<double>::infinity());
  std::vector<std::vector<int>> shard_best(shards);
  util::ParallelFor(total, [&](const util::Shard& shard) {
    std::vector<int> assignment(t);
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      std::size_t rem = i;
      for (std::size_t k = 0; k < t; ++k) {
        assignment[k] = static_cast<int>(rem % n);
        rem /= n;
      }
      const double c = problem.Cost(assignment);
      if (c < shard_cost[shard.index]) {
        shard_cost[shard.index] = c;
        shard_best[shard.index] = assignment;
      }
    }
  });
  best.evaluations = static_cast<int>(total);
  for (std::size_t s = 0; s < shards; ++s) {
    if (shard_cost[s] < best.cost) {
      best.cost = shard_cost[s];
      best.assignment = std::move(shard_best[s]);
    }
  }
  return best;
}

PlacementSolution SolvePso(const PlacementProblem& problem, util::Rng& rng,
                           int particles, int iterations) {
  const std::size_t t = problem.tasks.size();
  const double n = static_cast<double>(problem.nodes.size());
  const auto decode = [&](const std::vector<double>& x) {
    std::vector<int> assignment(t);
    for (std::size_t i = 0; i < t; ++i) {
      assignment[i] = std::clamp(static_cast<int>(x[i]), 0,
                                 static_cast<int>(n) - 1);
    }
    return assignment;
  };
  PsoConfig config;
  config.particles = particles;
  config.iterations = iterations;
  // Memetic seeding: anchor one particle at the greedy solution so the swarm
  // explores from a feasible region even on large instances.
  const PlacementSolution greedy = SolveGreedy(problem);
  std::vector<double> seed(t);
  for (std::size_t i = 0; i < t; ++i) {
    seed[i] = static_cast<double>(greedy.assignment[i]) + 0.5;
  }
  const PsoResult r = MinimizePso(
      [&](const std::vector<double>& x) { return problem.Cost(decode(x)); },
      std::vector<double>(t, 0.0), std::vector<double>(t, n - 1e-9), rng,
      config, seed);
  PlacementSolution sol;
  sol.assignment = decode(r.best_position);
  sol.cost = problem.Cost(sol.assignment);
  sol.evaluations = r.evaluations;
  return sol;
}

PlacementSolution SolveAco(const PlacementProblem& problem, util::Rng& rng,
                           int ants, int iterations, double evaporation) {
  const std::size_t t = problem.tasks.size();
  const std::size_t n = problem.nodes.size();
  std::vector<std::vector<double>> pheromone(t, std::vector<double>(n, 1.0));

  // Heuristic desirability: inverse of single-task marginal cost.
  std::vector<std::vector<double>> heuristic(t, std::vector<double>(n, 1.0));
  for (std::size_t i = 0; i < t; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      std::vector<int> solo(t, -1);
      solo[i] = static_cast<int>(j);
      double c = 0.0;
      const PlacementTask& task = problem.tasks[i];
      const PlacementNode& node = problem.nodes[j];
      if (node.security_level < task.min_security) c += kViolationPenalty;
      if (task.needs_accelerator && !node.has_accelerator) c += kViolationPenalty;
      c += task.cpu * node.power_mw_per_cpu * 1e-3 +
           task.traffic_kbps * node.latency_to_consumer_ms * 1e-3;
      heuristic[i][j] = 1.0 / (1.0 + c);
    }
  }

  PlacementSolution best;
  best.cost = std::numeric_limits<double>::infinity();
  for (int it = 0; it < iterations; ++it) {
    // Tours are built serially — roulette selection consumes `rng` in exactly
    // the sequential order — and only the RNG-free cost evaluations fan out.
    // The best-so-far fold stays in ant order with strict <, so the result
    // is bit-identical to the sequential sweep at any worker count.
    std::vector<std::vector<int>> tours(static_cast<std::size_t>(ants));
    for (int a = 0; a < ants; ++a) {
      std::vector<int>& tour = tours[static_cast<std::size_t>(a)];
      tour.resize(t);
      for (std::size_t i = 0; i < t; ++i) {
        // Roulette selection by pheromone * heuristic.
        double total = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
          total += pheromone[i][j] * heuristic[i][j];
        }
        double pick = rng.NextDouble() * total;
        std::size_t chosen = n - 1;
        for (std::size_t j = 0; j < n; ++j) {
          pick -= pheromone[i][j] * heuristic[i][j];
          if (pick <= 0) {
            chosen = j;
            break;
          }
        }
        tour[i] = static_cast<int>(chosen);
      }
    }
    const std::vector<double> costs = util::ParallelMap<double>(
        static_cast<std::size_t>(ants),
        [&](std::size_t a) { return problem.Cost(tours[a]); });
    for (int a = 0; a < ants; ++a) {
      ++best.evaluations;
      if (costs[static_cast<std::size_t>(a)] < best.cost) {
        best.cost = costs[static_cast<std::size_t>(a)];
        best.assignment = tours[static_cast<std::size_t>(a)];
      }
    }
    // Evaporate and reinforce with each ant's tour (quality-weighted).
    for (std::size_t i = 0; i < t; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        pheromone[i][j] *= (1.0 - evaporation);
        pheromone[i][j] = std::max(pheromone[i][j], 1e-6);
      }
    }
    for (int a = 0; a < ants; ++a) {
      const double quality = 1.0 / (1.0 + costs[static_cast<std::size_t>(a)]);
      for (std::size_t i = 0; i < t; ++i) {
        pheromone[i][static_cast<std::size_t>(tours[static_cast<std::size_t>(a)][i])] +=
            quality;
      }
    }
  }
  return best;
}

}  // namespace myrtus::swarm
