// Particle Swarm Optimization — one of the swarm-intelligence strategies the
// MIRTO Cognitive Engine uses for orchestration decisions (§IV, LAKE's
// contribution). Generic continuous minimizer with box bounds.
#pragma once

#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace myrtus::swarm {

struct PsoConfig {
  int particles = 24;
  int iterations = 60;
  double inertia = 0.72;
  double cognitive = 1.49;  // pull toward personal best
  double social = 1.49;     // pull toward global best
};

struct PsoResult {
  std::vector<double> best_position;
  double best_value = 0.0;
  int evaluations = 0;
};

/// Minimizes `objective` over the box [lower[i], upper[i]]^d. When `seed`
/// is non-empty, one particle starts from it (memetic seeding — lets a cheap
/// heuristic anchor the swarm in the feasible region).
PsoResult MinimizePso(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    util::Rng& rng, const PsoConfig& config = {},
    const std::vector<double>& seed = {});

}  // namespace myrtus::swarm
