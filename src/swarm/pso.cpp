#include "swarm/pso.hpp"

#include <algorithm>
#include <limits>

namespace myrtus::swarm {

PsoResult MinimizePso(
    const std::function<double(const std::vector<double>&)>& objective,
    const std::vector<double>& lower, const std::vector<double>& upper,
    util::Rng& rng, const PsoConfig& config, const std::vector<double>& seed) {
  const std::size_t dim = lower.size();
  PsoResult result;
  result.best_value = std::numeric_limits<double>::infinity();
  if (dim == 0 || dim != upper.size()) return result;

  struct Particle {
    std::vector<double> x;
    std::vector<double> v;
    std::vector<double> best_x;
    double best_f;
  };
  std::vector<Particle> particles(static_cast<std::size_t>(config.particles));
  bool seeded = false;
  for (Particle& p : particles) {
    p.x.resize(dim);
    p.v.resize(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      p.x[d] = rng.Uniform(lower[d], upper[d]);
      const double span = upper[d] - lower[d];
      p.v[d] = rng.Uniform(-span, span) * 0.1;
    }
    if (!seeded && seed.size() == dim) {
      for (std::size_t d = 0; d < dim; ++d) {
        p.x[d] = std::clamp(seed[d], lower[d], upper[d]);
      }
      seeded = true;
    }
    p.best_x = p.x;
    p.best_f = objective(p.x);
    ++result.evaluations;
    if (p.best_f < result.best_value) {
      result.best_value = p.best_f;
      result.best_position = p.x;
    }
  }

  for (int it = 0; it < config.iterations; ++it) {
    for (Particle& p : particles) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double r1 = rng.NextDouble();
        const double r2 = rng.NextDouble();
        p.v[d] = config.inertia * p.v[d] +
                 config.cognitive * r1 * (p.best_x[d] - p.x[d]) +
                 config.social * r2 * (result.best_position[d] - p.x[d]);
        p.x[d] = std::clamp(p.x[d] + p.v[d], lower[d], upper[d]);
      }
      const double f = objective(p.x);
      ++result.evaluations;
      if (f < p.best_f) {
        p.best_f = f;
        p.best_x = p.x;
      }
      if (f < result.best_value) {
        result.best_value = f;
        result.best_position = p.x;
      }
    }
  }
  return result;
}

}  // namespace myrtus::swarm
