#include "net/retry.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "net/transport.hpp"
#include "telemetry/telemetry.hpp"

namespace myrtus::net {

RetryPolicy RetryPolicy::None() {
  RetryPolicy p;
  p.max_attempts = 1;
  p.attempt_timeout = sim::SimTime::Seconds(5);
  p.overall_deadline = sim::SimTime::Seconds(5);
  p.use_circuit_breaker = false;
  return p;
}

sim::SimTime RetryPolicy::BackoffBefore(int attempt, util::Rng& rng) const {
  if (attempt <= 2 || backoff_multiplier <= 1.0) {
    // First backoff (or degenerate multiplier): the base wait, jittered.
    const double jittered =
        static_cast<double>(initial_backoff.ns) *
        (jitter > 0.0 ? rng.Uniform(1.0 - jitter, 1.0 + jitter) : 1.0);
    return sim::SimTime::Nanos(std::max<std::int64_t>(
        0, static_cast<std::int64_t>(std::llround(jittered))));
  }
  const double base =
      static_cast<double>(initial_backoff.ns) *
      std::pow(backoff_multiplier, static_cast<double>(attempt - 2));
  const double clamped = std::min(base, static_cast<double>(max_backoff.ns));
  const double jittered =
      clamped * (jitter > 0.0 ? rng.Uniform(1.0 - jitter, 1.0 + jitter) : 1.0);
  return sim::SimTime::Nanos(std::max<std::int64_t>(
      0, static_cast<std::int64_t>(std::llround(jittered))));
}

bool IsRetryableRpcStatus(const util::Status& status) {
  return status.code() == util::StatusCode::kUnavailable ||
         status.code() == util::StatusCode::kDeadlineExceeded;
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config)
    : config_(config) {}

CircuitBreaker::State CircuitBreaker::state(sim::SimTime now) const {
  if (state_ == State::kOpen && now >= opened_at_ + config_.open_timeout) {
    return State::kHalfOpen;
  }
  return state_;
}

bool CircuitBreaker::AllowRequest(sim::SimTime now) {
  switch (state(now)) {
    case State::kClosed:
      return true;
    case State::kOpen:
      ++rejections_;
      return false;
    case State::kHalfOpen:
      if (state_ == State::kOpen) {
        // Cooldown just elapsed: materialize the half-open transition.
        state_ = State::kHalfOpen;
        probe_in_flight_ = false;
      }
      if (probe_in_flight_) {
        ++rejections_;
        return false;
      }
      probe_in_flight_ = true;
      return true;
  }
  return true;
}

void CircuitBreaker::Open(sim::SimTime now) {
  state_ = State::kOpen;
  opened_at_ = now;
  probe_in_flight_ = false;
  ++opens_;
}

void CircuitBreaker::RecordSuccess(sim::SimTime now) {
  (void)now;
  if (state_ != State::kClosed) {
    // A successful probe heals the breaker with a clean window.
    state_ = State::kClosed;
    probe_in_flight_ = false;
    outcomes_.clear();
    window_failures_ = 0;
    return;
  }
  outcomes_.push_back(false);
  if (outcomes_.size() > config_.window) {
    if (outcomes_.front()) --window_failures_;
    outcomes_.pop_front();
  }
}

void CircuitBreaker::RecordFailure(sim::SimTime now) {
  if (state_ != State::kClosed) {
    // Failed probe: back to a full cooldown.
    Open(now);
    return;
  }
  outcomes_.push_back(true);
  ++window_failures_;
  if (outcomes_.size() > config_.window) {
    if (outcomes_.front()) --window_failures_;
    outcomes_.pop_front();
  }
  if (outcomes_.size() >= config_.min_samples &&
      FailureRate() >= config_.failure_threshold) {
    outcomes_.clear();
    window_failures_ = 0;
    Open(now);
  }
}

double CircuitBreaker::FailureRate() const {
  if (outcomes_.empty()) return 0.0;
  return static_cast<double>(window_failures_) /
         static_cast<double>(outcomes_.size());
}

std::string_view BreakerStateName(CircuitBreaker::State state) {
  switch (state) {
    case CircuitBreaker::State::kClosed: return "closed";
    case CircuitBreaker::State::kOpen: return "open";
    case CircuitBreaker::State::kHalfOpen: return "half-open";
  }
  return "?";
}

/// --- Network::CallWithRetry ---------------------------------------------
/// Lives here (not transport.cpp) so the retry loop, its telemetry, and the
/// breaker bookkeeping stay one readable unit.

struct Network::RetryOp {
  HostId from;
  HostId to;
  std::string method;
  util::Json request;
  RpcCallback callback;
  RetryPolicy policy;
  Protocol protocol = Protocol::kHttp;
  std::size_t body_bytes = 0;
  int priority = 1;
  int attempt = 0;              // attempts started so far
  sim::SimTime deadline;        // absolute overall deadline
};

CircuitBreaker& Network::BreakerFor(const HostId& to) {
  const auto it = breakers_.find(to);
  if (it != breakers_.end()) return it->second;
  return breakers_.emplace(to, CircuitBreaker(breaker_config_)).first->second;
}

void Network::CallWithRetry(const HostId& from, const HostId& to,
                            const std::string& method, util::Json request,
                            RpcCallback on_reply, RetryPolicy policy,
                            Protocol protocol, std::size_t body_bytes,
                            int priority) {
  auto op = std::make_shared<RetryOp>();
  op->from = from;
  op->to = to;
  op->method = method;
  op->request = std::move(request);
  op->callback = std::move(on_reply);
  op->policy = policy;
  op->protocol = protocol;
  op->body_bytes = body_bytes;
  op->priority = priority;
  op->deadline = engine_.Now() + policy.overall_deadline;
  RunRetryAttempt(std::move(op));
}

void Network::RunRetryAttempt(std::shared_ptr<RetryOp> op) {
  ++op->attempt;
  const sim::SimTime now = engine_.Now();

  if (op->policy.use_circuit_breaker &&
      !BreakerFor(op->to).AllowRequest(now)) {
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add("myrtus_net_retry_breaker_rejections_total",
                                      1.0, {{"peer", op->to}});
    }
    HandleAttemptFailure(
        std::move(op),
        util::Status::Unavailable("circuit open to " + op->to),
        /*record_outcome=*/false);
    return;
  }

  const sim::SimTime remaining = op->deadline - now;
  const sim::SimTime timeout =
      std::min(op->policy.attempt_timeout, std::max(sim::SimTime::Nanos(1), remaining));
  Call(
      op->from, op->to, op->method, op->request,
      [this, op](util::StatusOr<util::Json> reply) mutable {
        const bool destination_responded =
            reply.ok() || !IsRetryableRpcStatus(reply.status());
        if (op->policy.use_circuit_breaker) {
          if (destination_responded) {
            BreakerFor(op->to).RecordSuccess(engine_.Now());
          } else {
            BreakerFor(op->to).RecordFailure(engine_.Now());
          }
        }
        if (destination_responded) {
          if (telemetry::Enabled() && op->attempt > 1 && reply.ok()) {
            telemetry::Global().metrics.Add(
                "myrtus_net_retry_recovered_total", 1.0,
                {{"method", op->method}});
          }
          op->callback(std::move(reply));
          return;
        }
        util::Status status = reply.status();
        HandleAttemptFailure(std::move(op), std::move(status),
                             /*record_outcome=*/true);
      },
      timeout, op->protocol, op->body_bytes, op->priority);
}

void Network::HandleAttemptFailure(std::shared_ptr<RetryOp> op,
                                   util::Status status, bool record_outcome) {
  (void)record_outcome;  // outcome already fed to the breaker by the caller
  const sim::SimTime backoff =
      op->policy.BackoffBefore(op->attempt + 1, retry_rng_);
  const bool attempts_left = op->attempt < op->policy.max_attempts;
  const bool budget_left = engine_.Now() + backoff < op->deadline;
  if (!attempts_left || !budget_left) {
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add("myrtus_net_retry_exhausted_total", 1.0,
                                      {{"method", op->method}});
    }
    const util::Status final_status(
        status.code(), status.message() + " (after " +
                           std::to_string(op->attempt) + " attempt(s))");
    if (op->attempt == 1 && status.message().rfind("circuit open", 0) == 0) {
      // Breaker rejected the very first attempt: no Call was issued, so the
      // callback must still be deferred to keep callers off their own stack.
      engine_.ScheduleAfter(sim::SimTime::Zero(), [op, final_status] {
        op->callback(final_status);
      });
    } else {
      op->callback(final_status);
    }
    return;
  }
  ++retries_;
  if (telemetry::Enabled()) {
    auto& tel = telemetry::Global();
    tel.metrics.Add("myrtus_net_retry_attempts_total", 1.0,
                    {{"method", op->method}});
    tel.metrics.Observe("myrtus_net_retry_backoff_ms", backoff.ToMillisF());
  }
  trace_.Emit(engine_.Now(), "retry", op->method, static_cast<double>(op->attempt));
  engine_.ScheduleAfter(backoff, [this, op = std::move(op)]() mutable {
    RunRetryAttempt(std::move(op));
  });
}

}  // namespace myrtus::net
