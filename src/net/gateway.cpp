#include "net/gateway.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace myrtus::net {

SmartGateway::SmartGateway(Network& network, HostId host)
    : network_(network), host_(std::move(host)) {
  network_.Attach(host_, [this](const Message& msg) { OnMessage(msg); });
}

int SmartGateway::AddBridgeRule(const std::string& kind, HostId upstream,
                                Protocol upstream_protocol, int priority) {
  const int id = next_rule_id_++;
  bridges_.push_back(BridgeRule{id, kind, std::move(upstream),
                                upstream_protocol, priority});
  return id;
}

void SmartGateway::RemoveBridgeRule(int rule_id) {
  std::erase_if(bridges_, [rule_id](const BridgeRule& r) { return r.id == rule_id; });
}

void SmartGateway::EnableAggregation(const std::string& kind, HostId upstream,
                                     sim::SimTime window, std::size_t max_batch) {
  AggregationRule rule;
  rule.upstream = std::move(upstream);
  rule.window = window;
  rule.max_batch = max_batch;
  aggregations_[kind] = std::move(rule);
}

void SmartGateway::AddAdapter(const std::string& kind, Adapter adapter) {
  adapters_[kind].push_back(std::move(adapter));
}

void SmartGateway::OnMessage(const Message& msg) {
  Message working = msg;
  // Custom adapters first (filter/transform at the edge).
  const auto ait = adapters_.find(working.kind);
  if (ait != adapters_.end()) {
    for (const Adapter& adapter : ait->second) {
      if (!adapter(working)) {
        ++dropped_;
        return;
      }
    }
  }

  // Aggregation has precedence over direct bridging for the same kind.
  const auto agg = aggregations_.find(working.kind);
  if (agg != aggregations_.end()) {
    AggregationRule& rule = agg->second;
    rule.buffer.push_back(util::Json::MakeObject()
                              .Set("from", working.from)
                              .Set("payload", working.payload));
    rule.buffered_bytes += std::max<std::size_t>(working.body_bytes, 1);
    ++aggregated_in_;
    if (rule.buffer.size() >= rule.max_batch) {
      Flush(working.kind);
    } else if (!rule.flush_scheduled) {
      rule.flush_scheduled = true;
      network_.engine().ScheduleAfter(
          rule.window, [this, kind = working.kind] { Flush(kind); });
    }
    return;
  }

  for (const BridgeRule& rule : bridges_) {
    if (rule.kind != working.kind) continue;
    Message onward = working;
    onward.from = host_;
    onward.to = rule.upstream;
    onward.protocol = rule.protocol;
    onward.priority = rule.priority;
    // Preserve provenance for the upstream consumer.
    onward.payload = util::Json::MakeObject()
                         .Set("origin", working.from)
                         .Set("payload", working.payload);
    onward.body_bytes = std::max<std::size_t>(working.body_bytes, 1);
    if (SendUpstream(std::move(onward))) ++bridged_;
  }
}

bool SmartGateway::SendUpstream(Message msg) {
  auto sent = network_.Send(std::move(msg));
  if (sent.ok()) return true;
  // An unroutable upstream is a persistent misconfiguration, not transient
  // loss: surface it as a counter so monitors can alert instead of the
  // gateway silently eating traffic.
  ++upstream_send_failures_;
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add("myrtus_gateway_upstream_send_failures_total");
  }
  return false;
}

void SmartGateway::Flush(const std::string& kind) {
  const auto it = aggregations_.find(kind);
  if (it == aggregations_.end()) return;
  AggregationRule& rule = it->second;
  rule.flush_scheduled = false;
  if (rule.buffer.empty()) return;

  Message batch;
  batch.from = host_;
  batch.to = rule.upstream;
  batch.protocol = Protocol::kHttp;
  batch.kind = "gw.batch";
  batch.priority = 0;  // bulk slice
  util::Json items = util::Json::MakeArray();
  for (util::Json& item : rule.buffer) items.Append(std::move(item));
  batch.payload = util::Json::MakeObject()
                      .Set("kind", kind)
                      .Set("count", rule.buffer.size())
                      .Set("items", std::move(items));
  // One batch header amortizes over all readings.
  batch.body_bytes = rule.buffered_bytes;
  rule.buffer.clear();
  rule.buffered_bytes = 0;
  if (SendUpstream(std::move(batch))) ++batches_out_;
}

}  // namespace myrtus::net
