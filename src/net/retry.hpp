// Retry/backoff and circuit-breaking for the RPC fabric — the robustness
// layer the self-adaptive orchestration loop needs while edge nodes flap and
// links drop (paper §III Monitoring/Planning). A RetryPolicy bounds how hard
// a caller pushes (attempts, exponential backoff with deterministic seeded
// jitter, per-attempt and overall deadlines); a per-destination
// CircuitBreaker sheds load from endpoints whose recent failure rate says
// they are down, so a flapping peer degrades into fast local failures
// instead of a pile-up of in-flight timeouts. Both are pure state machines
// over sim::SimTime: no wall clock, fully reproducible.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string_view>

#include "sim/time.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::net {

/// How Network::CallWithRetry re-drives a failed RPC. The defaults suit
/// control-plane calls (pubsub, negotiation); latency-critical protocols
/// (Raft) override the timing fields to track their own timers.
struct RetryPolicy {
  /// Total tries including the first. 1 = plain Call semantics.
  int max_attempts = 4;
  /// Backoff before the 2nd attempt; doubles (see multiplier) afterwards.
  sim::SimTime initial_backoff = sim::SimTime::Millis(50);
  double backoff_multiplier = 2.0;
  sim::SimTime max_backoff = sim::SimTime::Seconds(2);
  /// Uniform jitter as a fraction of the backoff: the wait is scaled by a
  /// factor drawn from [1-jitter, 1+jitter] on the caller's seeded stream,
  /// de-synchronizing retry storms without breaking reproducibility.
  double jitter = 0.2;
  /// Deadline of each individual attempt (the Call timeout).
  sim::SimTime attempt_timeout = sim::SimTime::Seconds(1);
  /// Budget across all attempts and backoffs; once it cannot fit another
  /// backoff + attempt, the last error is surfaced.
  sim::SimTime overall_deadline = sim::SimTime::Seconds(10);
  /// Route attempts through the per-destination breaker (below).
  bool use_circuit_breaker = true;

  /// Single attempt, legacy 5 s timeout — behaves exactly like Call().
  static RetryPolicy None();

  /// Backoff to wait before `attempt` (2-based: the wait preceding the
  /// second attempt is BackoffBefore(2, ...)). Deterministic given the rng
  /// state; clamped to max_backoff before jitter is applied.
  [[nodiscard]] sim::SimTime BackoffBefore(int attempt, util::Rng& rng) const;
};

/// True for failures that signal "the destination may answer if asked again"
/// (UNAVAILABLE, DEADLINE_EXCEEDED). Application-level errors (NOT_FOUND,
/// RESOURCE_EXHAUSTED, ...) prove the destination is alive and are returned
/// to the caller immediately.
[[nodiscard]] bool IsRetryableRpcStatus(const util::Status& status);

struct CircuitBreakerConfig {
  /// Sliding window of most-recent call outcomes the failure rate is
  /// computed over.
  std::size_t window = 16;
  /// No tripping before this many outcomes are in the window (a single
  /// failure on a cold breaker must not open it).
  std::size_t min_samples = 8;
  /// Open when failures/window >= threshold.
  double failure_threshold = 0.6;
  /// How long an open breaker rejects before letting one probe through.
  sim::SimTime open_timeout = sim::SimTime::Millis(500);
};

/// Per-destination closed → open → half-open breaker. Time is always passed
/// in (simulated now) so the state machine is deterministic and testable.
class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed, kOpen, kHalfOpen };

  explicit CircuitBreaker(CircuitBreakerConfig config = {});

  /// Current state; an open breaker past its cooldown reports kHalfOpen.
  [[nodiscard]] State state(sim::SimTime now) const;

  /// Gate for one call. Closed: always true. Open: false until the cooldown
  /// elapses, then exactly one probe is admitted (half-open). Half-open:
  /// false while the probe is in flight.
  [[nodiscard]] bool AllowRequest(sim::SimTime now);

  /// Outcome feedback from the admitted call.
  void RecordSuccess(sim::SimTime now);
  void RecordFailure(sim::SimTime now);

  /// Failure fraction over the current window (0 when empty).
  [[nodiscard]] double FailureRate() const;
  [[nodiscard]] std::uint64_t opens() const { return opens_; }
  [[nodiscard]] std::uint64_t rejections() const { return rejections_; }

 private:
  void Open(sim::SimTime now);

  CircuitBreakerConfig config_;
  std::deque<bool> outcomes_;  // true = failure; bounded by config_.window
  std::size_t window_failures_ = 0;
  State state_ = State::kClosed;
  sim::SimTime opened_at_ = sim::SimTime::Zero();
  bool probe_in_flight_ = false;
  std::uint64_t opens_ = 0;
  std::uint64_t rejections_ = 0;
};

std::string_view BreakerStateName(CircuitBreaker::State state);

}  // namespace myrtus::net
