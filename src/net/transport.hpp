// Message transport over the simulated topology. Models, per hop:
//   queueing (FIFO per link) + serialization (size/bandwidth) + propagation
//   (+ jitter) and i.i.d. loss. On top of raw datagrams it offers a
// request/response RPC fabric used by MIRTO agents, the KB's consensus
// traffic, and the kube-like control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/retry.hpp"
#include "net/topology.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"
#include "telemetry/telemetry.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::net {

/// Application protocols with distinct framing overheads (paper §III Network:
/// components interoperate over HTTP/MQTT/CoAP).
enum class Protocol : std::uint8_t { kHttp, kMqtt, kCoap };
std::string_view ProtocolName(Protocol p);
/// Per-message framing overhead in bytes added to the payload.
std::size_t ProtocolOverheadBytes(Protocol p);

/// A datagram in flight.
struct Message {
  HostId from;
  HostId to;
  Protocol protocol = Protocol::kHttp;
  std::string kind;          // application-level tag ("rpc", "pub", ...)
  util::Json payload;        // structured body
  std::size_t body_bytes = 0;  // simulated body size (>= serialized payload)
  std::uint64_t id = 0;      // assigned by the network
  /// Network-slice priority (EU-CEI Network BB, §III "network slicing"):
  /// higher classes are transmitted first at every congested link.
  /// Convention: 0 = bulk data, 1 = application control, 2 = orchestration.
  int priority = 0;
};

/// Delivery callback on the receiving host.
using MessageHandler = std::function<void(const Message&)>;

class Network {
 public:
  Network(sim::Engine& engine, Topology topology, std::uint64_t seed);
  /// Uninstalls the tracer clock this network installed (no-op when a
  /// later-constructed network installed over it): the closure points into
  /// this object, and the global tracer outlives every network.
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  [[nodiscard]] Topology& topology() { return topology_; }
  [[nodiscard]] const Topology& topology() const { return topology_; }
  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] sim::Trace& trace() { return trace_; }

  /// Registers the datagram handler for a host (one per host; later
  /// registrations replace earlier ones).
  void Attach(const HostId& host, MessageHandler handler);

  /// Sends a message. Returns the message id, or an error when no route
  /// exists. Loss is silent (no callback), like a real datagram network.
  util::StatusOr<std::uint64_t> Send(Message msg);

  /// --- RPC fabric -------------------------------------------------------
  /// A host exposes named methods; peers call them and receive a reply (or
  /// DEADLINE_EXCEEDED after `timeout`).
  using RpcHandler =
      std::function<util::StatusOr<util::Json>(const HostId& caller,
                                               const util::Json& request)>;
  using RpcCallback = std::function<void(util::StatusOr<util::Json>)>;
  /// Deferred-reply handler: `respond` may be invoked later (e.g. once a
  /// replicated write commits). Invoking it more than once is ignored.
  using RpcResponder = std::function<void(util::StatusOr<util::Json>)>;
  using AsyncRpcHandler = std::function<void(
      const HostId& caller, const util::Json& request, RpcResponder respond)>;

  void RegisterRpc(const HostId& host, const std::string& method,
                   RpcHandler handler);
  void RegisterAsyncRpc(const HostId& host, const std::string& method,
                        AsyncRpcHandler handler);
  /// `body_bytes` overrides the simulated request size (0 = derive from the
  /// JSON encoding) so calls can model bulk payloads without materializing
  /// them.
  /// RPC traffic defaults to the control slice (priority 1); replies inherit
  /// the request's class.
  void Call(const HostId& from, const HostId& to, const std::string& method,
            util::Json request, RpcCallback on_reply,
            sim::SimTime timeout = sim::SimTime::Seconds(5),
            Protocol protocol = Protocol::kHttp, std::size_t body_bytes = 0,
            int priority = 1);

  /// Call() plus a retry loop: retryable failures (UNAVAILABLE,
  /// DEADLINE_EXCEEDED) are re-driven with exponential backoff + seeded
  /// jitter until the policy's attempt or deadline budget runs out, gated by
  /// a per-destination circuit breaker. `on_reply` fires exactly once with
  /// the first success or the final error.
  void CallWithRetry(const HostId& from, const HostId& to,
                     const std::string& method, util::Json request,
                     RpcCallback on_reply, RetryPolicy policy = {},
                     Protocol protocol = Protocol::kHttp,
                     std::size_t body_bytes = 0, int priority = 1);

  /// The breaker guarding calls to `to` (created closed on first use).
  [[nodiscard]] CircuitBreaker& BreakerFor(const HostId& to);
  void set_breaker_config(CircuitBreakerConfig config) {
    breaker_config_ = config;
  }

  /// Total simulated bytes that crossed any link.
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t messages_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t messages_dropped() const { return dropped_; }
  /// Retry attempts re-driven by CallWithRetry (excludes first attempts).
  [[nodiscard]] std::uint64_t retries() const { return retries_; }

 private:
  struct RetryOp;
  void RunRetryAttempt(std::shared_ptr<RetryOp> op);
  void HandleAttemptFailure(std::shared_ptr<RetryOp> op, util::Status status,
                            bool record_outcome);
  void DeliverHop(Message msg, Route route, std::size_t hop_index);
  void StartTransmission(std::size_t link_index, Message msg, Route route,
                         std::size_t hop_index);
  void OnLinkFree(std::size_t link_index);
  void HandleRpcRequest(const Message& msg);
  void HandleRpcReply(const Message& msg);
  void Dispatch(const Message& msg);

  sim::Engine& engine_;
  Topology topology_;
  util::Rng rng_;
  sim::Trace trace_;
  std::int64_t tracer_clock_token_ = 0;  // Tracer::set_clock installation

  std::map<HostId, MessageHandler> handlers_;
  std::map<std::pair<HostId, std::string>, AsyncRpcHandler> rpc_handlers_;

  struct PendingCall {
    RpcCallback callback;
    sim::EventHandle timeout_event;
    // Telemetry state for the client span (empty/invalid when disabled at
    // call time).
    telemetry::SpanContext span;
    std::string method;
    std::int64_t started_ns = 0;
  };
  std::map<std::uint64_t, PendingCall> pending_calls_;

  /// Ends the client span and records RPC latency/outcome metrics.
  void FinishCallTelemetry(PendingCall& call, const util::Status& status);

  // Per-link transmission state: one frame in flight; waiting frames are
  // served highest-priority-first (FIFO within a class) — the "network
  // slicing" behaviour of the EU-CEI Network building block.
  struct PendingTx {
    int priority;
    std::uint64_t seq;  // FIFO tie-break
    Message msg;
    Route route;
    std::size_t hop_index;
  };
  struct LinkState {
    bool busy = false;
    std::vector<PendingTx> waiting;  // kept as a max-heap by (priority, -seq)
  };
  std::map<std::size_t, LinkState> link_state_;
  std::uint64_t next_tx_seq_ = 1;

  // Retry layer state: breakers are per destination host; the backoff jitter
  // draws from its own stream so plain Call() traffic stays byte-identical
  // whether or not anyone retries.
  CircuitBreakerConfig breaker_config_;
  std::map<HostId, CircuitBreaker> breakers_;
  util::Rng retry_rng_;

  std::uint64_t next_msg_id_ = 1;
  std::uint64_t next_call_id_ = 1;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace myrtus::net
