// Network topology for the continuum: hosts connected by directed links with
// latency/bandwidth/jitter/loss. Routing is shortest-path by propagation
// latency (recomputed lazily after mutations), which matches the paper's
// assumption that all components speak the same protocols over a multi-layer
// network (§III Network).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/status.hpp"

namespace myrtus::net {

using HostId = std::string;

/// One directed link. Bidirectional physical cables are modeled as two links.
struct Link {
  HostId from;
  HostId to;
  sim::SimTime latency;        // propagation delay
  double bandwidth_bps = 1e9;  // serialization rate
  double loss_rate = 0.0;      // i.i.d. packet loss in [0,1)
  sim::SimTime jitter;         // uniform [0, jitter] added per packet
};

/// Route lookup result: the ordered list of links from src to dst.
struct Route {
  std::vector<std::size_t> link_indices;
  sim::SimTime propagation;  // sum of link latencies
  double min_bandwidth_bps = 0.0;
};

class Topology {
 public:
  /// Registers a host; idempotent.
  void AddHost(const HostId& id);
  /// Adds a directed link. Hosts are auto-registered.
  void AddLink(Link link);
  /// Adds both directions with identical parameters.
  void AddBidirectional(const HostId& a, const HostId& b, sim::SimTime latency,
                        double bandwidth_bps, double loss_rate = 0.0,
                        sim::SimTime jitter = {});

  [[nodiscard]] bool HasHost(const HostId& id) const;
  [[nodiscard]] std::size_t host_count() const { return hosts_.size(); }
  [[nodiscard]] std::size_t link_count() const { return links_.size(); }
  [[nodiscard]] const Link& link(std::size_t index) const { return links_[index]; }
  Link& mutable_link(std::size_t index) { return links_[index]; }
  [[nodiscard]] const std::vector<HostId>& hosts() const { return hosts_; }

  /// Marks a link up/down (failure injection). Down links are excluded from
  /// routing.
  void SetLinkUp(std::size_t index, bool up);
  [[nodiscard]] bool IsLinkUp(std::size_t index) const;

  /// Shortest route by propagation latency. NOT_FOUND when disconnected.
  [[nodiscard]] util::StatusOr<Route> FindRoute(const HostId& from,
                                                const HostId& to) const;

 private:
  void EnsureRoutesFresh() const;

  std::vector<HostId> hosts_;
  std::map<HostId, std::size_t> host_index_;
  std::vector<Link> links_;
  std::vector<bool> link_up_;
  std::vector<std::vector<std::size_t>> out_links_;  // per host

  // Dijkstra cache: next_link_[src][dst] = first link index on the path.
  mutable std::vector<std::vector<std::int32_t>> next_link_;
  mutable bool routes_dirty_ = true;
};

}  // namespace myrtus::net
