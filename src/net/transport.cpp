#include "net/transport.hpp"

#include <algorithm>
#include <utility>

namespace myrtus::net {

std::string_view ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "http";
    case Protocol::kMqtt: return "mqtt";
    case Protocol::kCoap: return "coap";
  }
  return "?";
}

std::size_t ProtocolOverheadBytes(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return 220;  // request line + typical headers
    case Protocol::kMqtt: return 8;    // fixed header + topic overhead share
    case Protocol::kCoap: return 12;   // 4-byte header + options
  }
  return 0;
}

Network::Network(sim::Engine& engine, Topology topology, std::uint64_t seed)
    : engine_(engine), topology_(std::move(topology)), rng_(seed, "network") {}

void Network::Attach(const HostId& host, MessageHandler handler) {
  topology_.AddHost(host);
  handlers_[host] = std::move(handler);
}

util::StatusOr<std::uint64_t> Network::Send(Message msg) {
  msg.id = next_msg_id_++;
  if (msg.body_bytes == 0) {
    msg.body_bytes = msg.payload.Dump().size();
  }
  if (msg.from == msg.to) {
    // Loopback: deliver on the next event-loop turn, zero cost.
    Message local = std::move(msg);
    const std::uint64_t id = local.id;
    engine_.ScheduleAfter(sim::SimTime::Zero(),
                          [this, m = std::move(local)] { Dispatch(m); });
    return id;
  }
  auto route = topology_.FindRoute(msg.from, msg.to);
  if (!route.ok()) return route.status();
  const std::uint64_t id = msg.id;
  DeliverHop(std::move(msg), std::move(route).value(), 0);
  return id;
}

void Network::DeliverHop(Message msg, Route route, std::size_t hop_index) {
  if (hop_index >= route.link_indices.size()) {
    Dispatch(msg);
    return;
  }
  const std::size_t li = route.link_indices[hop_index];
  const Link& link = topology_.link(li);
  const std::size_t wire_bytes =
      msg.body_bytes + ProtocolOverheadBytes(msg.protocol);

  // Loss check per hop.
  if (link.loss_rate > 0.0 && rng_.NextBool(link.loss_rate)) {
    ++dropped_;
    trace_.Emit(engine_.Now(), link.from + "->" + link.to, "drop",
                static_cast<double>(wire_bytes));
    return;
  }

  LinkState& state = link_state_[li];
  if (state.busy) {
    // Enqueue by (priority desc, seq asc); vector kept sorted on insert so
    // the next frame to send is always at the back.
    PendingTx pending{msg.priority, next_tx_seq_++, std::move(msg),
                      std::move(route), hop_index};
    auto it = std::lower_bound(
        state.waiting.begin(), state.waiting.end(), pending,
        [](const PendingTx& a, const PendingTx& b) {
          if (a.priority != b.priority) return a.priority < b.priority;
          return a.seq > b.seq;  // older (smaller seq) closer to the back
        });
    state.waiting.insert(it, std::move(pending));
    trace_.Emit(engine_.Now(), link.from + "->" + link.to, "queued", 1.0);
    return;
  }
  StartTransmission(li, std::move(msg), std::move(route), hop_index);
}

void Network::StartTransmission(std::size_t link_index, Message msg,
                                Route route, std::size_t hop_index) {
  const Link& link = topology_.link(link_index);
  const std::size_t wire_bytes =
      msg.body_bytes + ProtocolOverheadBytes(msg.protocol);
  const sim::SimTime serialization = sim::SimTime::FromSeconds(
      static_cast<double>(wire_bytes) * 8.0 / link.bandwidth_bps);
  const sim::SimTime jitter =
      link.jitter.ns > 0
          ? sim::SimTime::Nanos(static_cast<std::int64_t>(
                rng_.NextDouble() * static_cast<double>(link.jitter.ns)))
          : sim::SimTime::Zero();

  link_state_[link_index].busy = true;
  bytes_sent_ += wire_bytes;

  const sim::SimTime tx_done = engine_.Now() + serialization;
  const sim::SimTime arrival = tx_done + link.latency + jitter;
  // The link frees when the last bit leaves; the frame arrives after the
  // propagation delay.
  engine_.ScheduleAt(tx_done, [this, link_index] { OnLinkFree(link_index); });
  engine_.ScheduleAt(arrival,
                     [this, m = std::move(msg), route = std::move(route),
                      hop_index]() mutable {
                       DeliverHop(std::move(m), std::move(route), hop_index + 1);
                     });
}

void Network::OnLinkFree(std::size_t link_index) {
  LinkState& state = link_state_[link_index];
  state.busy = false;
  if (state.waiting.empty()) return;
  PendingTx next = std::move(state.waiting.back());
  state.waiting.pop_back();
  StartTransmission(link_index, std::move(next.msg), std::move(next.route),
                    next.hop_index);
}

void Network::Dispatch(const Message& msg) {
  ++delivered_;
  if (msg.kind == "rpc.request") {
    HandleRpcRequest(msg);
    return;
  }
  if (msg.kind == "rpc.reply") {
    HandleRpcReply(msg);
    return;
  }
  const auto it = handlers_.find(msg.to);
  if (it != handlers_.end() && it->second) {
    it->second(msg);
  }
}

void Network::RegisterRpc(const HostId& host, const std::string& method,
                          RpcHandler handler) {
  RegisterAsyncRpc(host, method,
                   [handler = std::move(handler)](const HostId& caller,
                                                  const util::Json& request,
                                                  RpcResponder respond) {
                     respond(handler(caller, request));
                   });
}

void Network::RegisterAsyncRpc(const HostId& host, const std::string& method,
                               AsyncRpcHandler handler) {
  topology_.AddHost(host);
  rpc_handlers_[{host, method}] = std::move(handler);
}

void Network::Call(const HostId& from, const HostId& to,
                   const std::string& method, util::Json request,
                   RpcCallback on_reply, sim::SimTime timeout,
                   Protocol protocol, std::size_t body_bytes, int priority) {
  const std::uint64_t call_id = next_call_id_++;

  PendingCall pending;
  pending.callback = std::move(on_reply);
  pending.timeout_event = engine_.ScheduleAfter(timeout, [this, call_id] {
    const auto it = pending_calls_.find(call_id);
    if (it == pending_calls_.end()) return;
    RpcCallback cb = std::move(it->second.callback);
    pending_calls_.erase(it);
    cb(util::Status::DeadlineExceeded("rpc timed out"));
  });
  pending_calls_[call_id] = std::move(pending);

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.protocol = protocol;
  msg.kind = "rpc.request";
  msg.body_bytes = body_bytes;
  msg.priority = priority;
  msg.payload = util::Json::MakeObject()
                    .Set("call_id", call_id)
                    .Set("method", method)
                    .Set("request", std::move(request));
  auto sent = Send(std::move(msg));
  if (!sent.ok()) {
    const auto it = pending_calls_.find(call_id);
    if (it != pending_calls_.end()) {
      engine_.Cancel(it->second.timeout_event);
      RpcCallback cb = std::move(it->second.callback);
      pending_calls_.erase(it);
      cb(sent.status());
    }
  }
}

void Network::HandleRpcRequest(const Message& msg) {
  const std::string method = msg.payload.at("method").as_string();
  const std::int64_t call_id = msg.payload.at("call_id").as_int();

  // The responder may run immediately (sync handlers) or later (replicated
  // writes). A shared fired-flag makes double responses harmless.
  auto fired = std::make_shared<bool>(false);
  const HostId responder_host = msg.to;
  const HostId caller_host = msg.from;
  const Protocol protocol = msg.protocol;
  const int priority = msg.priority;
  RpcResponder respond = [this, fired, responder_host, caller_host, protocol,
                          priority, call_id](util::StatusOr<util::Json> result) {
    if (*fired) return;
    *fired = true;
    Message reply;
    reply.from = responder_host;
    reply.to = caller_host;
    reply.protocol = protocol;
    reply.priority = priority;
    reply.kind = "rpc.reply";
    util::Json body = util::Json::MakeObject();
    body.Set("call_id", call_id);
    if (result.ok()) {
      body.Set("ok", true).Set("result", std::move(result).value());
    } else {
      body.Set("ok", false)
          .Set("code", static_cast<std::int64_t>(result.status().code()))
          .Set("error", result.status().message());
    }
    reply.payload = std::move(body);
    (void)Send(std::move(reply));  // reply loss behaves like a timeout
  };

  const auto it = rpc_handlers_.find({msg.to, method});
  if (it == rpc_handlers_.end()) {
    respond(util::Status::Unimplemented("no handler for " + method + " on " +
                                        msg.to));
    return;
  }
  it->second(msg.from, msg.payload.at("request"), std::move(respond));
}

void Network::HandleRpcReply(const Message& msg) {
  const auto call_id = static_cast<std::uint64_t>(msg.payload.at("call_id").as_int());
  const auto it = pending_calls_.find(call_id);
  if (it == pending_calls_.end()) return;  // raced with timeout
  engine_.Cancel(it->second.timeout_event);
  RpcCallback cb = std::move(it->second.callback);
  pending_calls_.erase(it);
  if (msg.payload.at("ok").as_bool()) {
    cb(msg.payload.at("result"));
  } else {
    cb(util::Status(static_cast<util::StatusCode>(msg.payload.at("code").as_int()),
                    msg.payload.at("error").as_string()));
  }
}

}  // namespace myrtus::net
