#include "net/transport.hpp"

#include <algorithm>
#include <utility>

namespace myrtus::net {

std::string_view ProtocolName(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return "http";
    case Protocol::kMqtt: return "mqtt";
    case Protocol::kCoap: return "coap";
  }
  return "?";
}

std::size_t ProtocolOverheadBytes(Protocol p) {
  switch (p) {
    case Protocol::kHttp: return 220;  // request line + typical headers
    case Protocol::kMqtt: return 8;    // fixed header + topic overhead share
    case Protocol::kCoap: return 12;   // 4-byte header + options
  }
  return 0;
}

Network::Network(sim::Engine& engine, Topology topology, std::uint64_t seed)
    : engine_(engine),
      topology_(std::move(topology)),
      rng_(seed, "network"),
      retry_rng_(seed, "retry") {
  // The network is the chokepoint every layer already passes through, so its
  // engine becomes the tracer's sim-time source. Last-constructed wins; the
  // destructor uninstalls via the returned token, so the global tracer never
  // holds this closure past the network's lifetime.
  // LINT: deferred-capture-ok(eng) -- ~Network uninstalls this clock
  // (generation token) before the pointee can dangle
  tracer_clock_token_ = telemetry::Global().tracer.set_clock(
      [eng = &engine_] { return eng->Now().ns; });
}

Network::~Network() {
  telemetry::Global().tracer.reset_clock(tracer_clock_token_);
}

void Network::FinishCallTelemetry(PendingCall& call, const util::Status& status) {
  if (!call.span.valid()) return;
  auto& tel = telemetry::Global();
  tel.tracer.SetAttribute(call.span, "status",
                          std::string(util::StatusCodeName(status.code())));
  tel.tracer.EndSpan(call.span, engine_.Now().ns);
  tel.metrics.Observe(
      "myrtus_net_rpc_latency_ms",
      static_cast<double>(engine_.Now().ns - call.started_ns) * 1e-6,
      {{"method", call.method}});
  tel.metrics.Add("myrtus_net_rpc_total", 1.0,
                  {{"method", call.method},
                   {"status", std::string(util::StatusCodeName(status.code()))}});
}

void Network::Attach(const HostId& host, MessageHandler handler) {
  topology_.AddHost(host);
  handlers_[host] = std::move(handler);
}

util::StatusOr<std::uint64_t> Network::Send(Message msg) {
  msg.id = next_msg_id_++;
  if (msg.body_bytes == 0) {
    msg.body_bytes = msg.payload.Dump().size();
  }
  if (msg.from == msg.to) {
    // Loopback: deliver on the next event-loop turn, zero cost.
    Message local = std::move(msg);
    const std::uint64_t id = local.id;
    engine_.ScheduleAfter(sim::SimTime::Zero(),
                          [this, m = std::move(local)] { Dispatch(m); });
    return id;
  }
  auto route = topology_.FindRoute(msg.from, msg.to);
  if (!route.ok()) return route.status();
  const std::uint64_t id = msg.id;
  DeliverHop(std::move(msg), std::move(route).value(), 0);
  return id;
}

void Network::DeliverHop(Message msg, Route route, std::size_t hop_index) {
  if (hop_index >= route.link_indices.size()) {
    Dispatch(msg);
    return;
  }
  const std::size_t li = route.link_indices[hop_index];
  const Link& link = topology_.link(li);
  const std::size_t wire_bytes =
      msg.body_bytes + ProtocolOverheadBytes(msg.protocol);

  // Loss check per hop.
  if (link.loss_rate > 0.0 && rng_.NextBool(link.loss_rate)) {
    ++dropped_;
    trace_.Emit(engine_.Now(), link.from + "->" + link.to, "drop",
                static_cast<double>(wire_bytes));
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add("myrtus_net_drops_total");
    }
    return;
  }

  LinkState& state = link_state_[li];
  if (state.busy) {
    // Enqueue by (priority desc, seq asc); vector kept sorted on insert so
    // the next frame to send is always at the back.
    PendingTx pending{msg.priority, next_tx_seq_++, std::move(msg),
                      std::move(route), hop_index};
    auto it = std::lower_bound(
        state.waiting.begin(), state.waiting.end(), pending,
        [](const PendingTx& a, const PendingTx& b) {
          if (a.priority != b.priority) return a.priority < b.priority;
          return a.seq > b.seq;  // older (smaller seq) closer to the back
        });
    state.waiting.insert(it, std::move(pending));
    trace_.Emit(engine_.Now(), link.from + "->" + link.to, "queued", 1.0);
    return;
  }
  StartTransmission(li, std::move(msg), std::move(route), hop_index);
}

void Network::StartTransmission(std::size_t link_index, Message msg,
                                Route route, std::size_t hop_index) {
  const Link& link = topology_.link(link_index);
  const std::size_t wire_bytes =
      msg.body_bytes + ProtocolOverheadBytes(msg.protocol);
  const sim::SimTime serialization = sim::SimTime::FromSeconds(
      static_cast<double>(wire_bytes) * 8.0 / link.bandwidth_bps);
  const sim::SimTime jitter =
      link.jitter.ns > 0
          ? sim::SimTime::Nanos(static_cast<std::int64_t>(
                rng_.NextDouble() * static_cast<double>(link.jitter.ns)))
          : sim::SimTime::Zero();

  link_state_[link_index].busy = true;
  bytes_sent_ += wire_bytes;
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add(
        "myrtus_net_bytes_total", static_cast<double>(wire_bytes),
        {{"protocol", std::string(ProtocolName(msg.protocol))}});
  }

  const sim::SimTime tx_done = engine_.Now() + serialization;
  const sim::SimTime arrival = tx_done + link.latency + jitter;
  // The link frees when the last bit leaves; the frame arrives after the
  // propagation delay.
  engine_.ScheduleAt(tx_done, [this, link_index] { OnLinkFree(link_index); });
  engine_.ScheduleAt(arrival,
                     [this, m = std::move(msg), route = std::move(route),
                      hop_index]() mutable {
                       DeliverHop(std::move(m), std::move(route), hop_index + 1);
                     });
}

void Network::OnLinkFree(std::size_t link_index) {
  LinkState& state = link_state_[link_index];
  state.busy = false;
  if (state.waiting.empty()) return;
  PendingTx next = std::move(state.waiting.back());
  state.waiting.pop_back();
  StartTransmission(link_index, std::move(next.msg), std::move(next.route),
                    next.hop_index);
}

void Network::Dispatch(const Message& msg) {
  ++delivered_;
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add("myrtus_net_delivered_total");
  }
  if (msg.kind == "rpc.request") {
    HandleRpcRequest(msg);
    return;
  }
  if (msg.kind == "rpc.reply") {
    HandleRpcReply(msg);
    return;
  }
  const auto it = handlers_.find(msg.to);
  if (it != handlers_.end() && it->second) {
    it->second(msg);
  }
}

void Network::RegisterRpc(const HostId& host, const std::string& method,
                          RpcHandler handler) {
  RegisterAsyncRpc(host, method,
                   [handler = std::move(handler)](const HostId& caller,
                                                  const util::Json& request,
                                                  RpcResponder respond) {
                     respond(handler(caller, request));
                   });
}

void Network::RegisterAsyncRpc(const HostId& host, const std::string& method,
                               AsyncRpcHandler handler) {
  topology_.AddHost(host);
  rpc_handlers_[{host, method}] = std::move(handler);
}

void Network::Call(const HostId& from, const HostId& to,
                   const std::string& method, util::Json request,
                   RpcCallback on_reply, sim::SimTime timeout,
                   Protocol protocol, std::size_t body_bytes, int priority) {
  const std::uint64_t call_id = next_call_id_++;

  PendingCall pending;
  pending.callback = std::move(on_reply);
  pending.timeout_event = engine_.ScheduleAfter(timeout, [this, call_id] {
    const auto it = pending_calls_.find(call_id);
    if (it == pending_calls_.end()) return;
    PendingCall call = std::move(it->second);
    pending_calls_.erase(it);
    const util::Status timed_out = util::Status::DeadlineExceeded("rpc timed out");
    FinishCallTelemetry(call, timed_out);
    call.callback(timed_out);
  });
  if (telemetry::Enabled()) {
    // Client span: child of whatever context is current at call time. Its
    // context rides in the request header so the server span links to it.
    auto& tel = telemetry::Global();
    pending.span = tel.tracer.StartSpan("rpc.call " + method, "net",
                                        tel.tracer.current(), engine_.Now().ns);
    tel.tracer.SetAttribute(pending.span, "from", from);
    tel.tracer.SetAttribute(pending.span, "to", to);
    pending.method = method;
    pending.started_ns = engine_.Now().ns;
  }
  const telemetry::SpanContext call_span = pending.span;
  pending_calls_[call_id] = std::move(pending);

  Message msg;
  msg.from = from;
  msg.to = to;
  msg.protocol = protocol;
  msg.kind = "rpc.request";
  msg.body_bytes = body_bytes;
  msg.priority = priority;
  msg.payload = util::Json::MakeObject()
                    .Set("call_id", call_id)
                    .Set("method", method)
                    .Set("request", std::move(request));
  if (call_span.valid()) {
    msg.payload.Set("tctx", call_span.ToJson());
  }
  auto sent = Send(std::move(msg));
  if (!sent.ok()) {
    const auto it = pending_calls_.find(call_id);
    if (it != pending_calls_.end()) {
      engine_.Cancel(it->second.timeout_event);
      auto call = std::make_shared<PendingCall>(std::move(it->second));
      pending_calls_.erase(it);
      // No route is a transient condition (links flap), so surface it as
      // UNAVAILABLE, and always complete asynchronously: a synchronous
      // callback would re-enter the caller's stack mid-Call, which breaks
      // retry loops and Raft's per-peer append serialization.
      const util::Status unroutable =
          util::Status::Unavailable("unroutable: " + sent.status().message());
      FinishCallTelemetry(*call, unroutable);
      engine_.ScheduleAfter(sim::SimTime::Zero(), [call, unroutable] {
        call->callback(unroutable);
      });
    }
  }
}

void Network::HandleRpcRequest(const Message& msg) {
  const std::string method = msg.payload.at("method").as_string();
  const std::int64_t call_id = msg.payload.at("call_id").as_int();

  // Server span: parented on the remote client span via the propagated
  // header, current while the handler runs, ended when the handler responds
  // (which for async handlers may be much later than the dispatch).
  telemetry::SpanContext server_span;
  if (telemetry::Enabled()) {
    auto& tel = telemetry::Global();
    server_span = tel.tracer.StartSpan(
        "rpc.serve " + method, "net",
        telemetry::SpanContext::FromJson(msg.payload.at("tctx")),
        engine_.Now().ns);
    tel.tracer.SetAttribute(server_span, "host", msg.to);
  }

  // The responder may run immediately (sync handlers) or later (replicated
  // writes). A shared fired-flag makes double responses harmless.
  auto fired = std::make_shared<bool>(false);
  const HostId responder_host = msg.to;
  const HostId caller_host = msg.from;
  const Protocol protocol = msg.protocol;
  const int priority = msg.priority;
  RpcResponder respond = [this, fired, responder_host, caller_host, protocol,
                          priority, call_id,
                          server_span](util::StatusOr<util::Json> result) {
    if (*fired) return;
    *fired = true;
    if (server_span.valid()) {
      auto& tel = telemetry::Global();
      tel.tracer.SetAttribute(
          server_span, "status",
          std::string(util::StatusCodeName(result.status().code())));
      tel.tracer.EndSpan(server_span, engine_.Now().ns);
    }
    Message reply;
    reply.from = responder_host;
    reply.to = caller_host;
    reply.protocol = protocol;
    reply.priority = priority;
    reply.kind = "rpc.reply";
    util::Json body = util::Json::MakeObject();
    body.Set("call_id", call_id);
    if (result.ok()) {
      body.Set("ok", true).Set("result", std::move(result).value());
    } else {
      body.Set("ok", false)
          .Set("code", static_cast<std::int64_t>(result.status().code()))
          .Set("error", result.status().message());
    }
    reply.payload = std::move(body);
    // LINT: discard(reply send failure behaves like a timeout at the caller)
    (void)Send(std::move(reply));
  };

  const auto it = rpc_handlers_.find({msg.to, method});
  if (it == rpc_handlers_.end()) {
    respond(util::Status::Unimplemented("no handler for " + method + " on " +
                                        msg.to));
    return;
  }
  // The server span is the current context while the handler runs, so spans
  // it starts (scheduler passes, nested RPCs, pubsub fan-out) nest under it.
  if (server_span.valid()) telemetry::Global().tracer.PushContext(server_span);
  it->second(msg.from, msg.payload.at("request"), std::move(respond));
  if (server_span.valid()) telemetry::Global().tracer.PopContext();
}

void Network::HandleRpcReply(const Message& msg) {
  const auto call_id = static_cast<std::uint64_t>(msg.payload.at("call_id").as_int());
  const auto it = pending_calls_.find(call_id);
  if (it == pending_calls_.end()) return;  // raced with timeout
  engine_.Cancel(it->second.timeout_event);
  PendingCall call = std::move(it->second);
  pending_calls_.erase(it);
  if (msg.payload.at("ok").as_bool()) {
    FinishCallTelemetry(call, util::Status::Ok());
    call.callback(msg.payload.at("result"));
  } else {
    const util::Status error(
        static_cast<util::StatusCode>(msg.payload.at("code").as_int()),
        msg.payload.at("error").as_string());
    FinishCallTelemetry(call, error);
    call.callback(error);
  }
}

}  // namespace myrtus::net
