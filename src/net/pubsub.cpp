#include "net/pubsub.hpp"

#include <utility>

namespace myrtus::net {

bool TopicMatches(const std::string& filter, const std::string& topic) {
  std::size_t fi = 0;
  std::size_t ti = 0;
  const auto next_level = [](const std::string& s, std::size_t from) {
    const std::size_t slash = s.find('/', from);
    return slash == std::string::npos ? s.size() : slash;
  };
  while (fi < filter.size() || ti < topic.size()) {
    const std::size_t fe = next_level(filter, fi);
    const std::size_t te = next_level(topic, ti);
    // LINT: allow(unsigned-underflow, next_level returns find('/', from) or
    // size(), both >= from, so the level span cannot wrap)
    const std::string_view flevel(filter.data() + fi, fe - fi);
    if (flevel == "#") {
      // Multi-level wildcard is only legal as the last filter level (MQTT
      // 4.7.1-2); "a/#/b" must not match everything.
      return fe == filter.size();
    }
    if (fi >= filter.size() || ti >= topic.size()) return false;
    // LINT: allow(unsigned-underflow, next_level returns find('/', from) or
    // size(), both >= from, so the level span cannot wrap)
    const std::string_view tlevel(topic.data() + ti, te - ti);
    if (flevel != "+" && flevel != tlevel) return false;
    fi = fe + 1;
    ti = te + 1;
    if (fe == filter.size()) fi = filter.size();
    if (te == topic.size()) ti = topic.size();
    // Both exhausted -> match; one exhausted -> checked on next iteration.
    if (fi >= filter.size() && ti >= topic.size()) return true;
  }
  return fi >= filter.size() && ti >= topic.size();
}

Broker::Broker(Network& network, HostId host)
    : network_(network), host_(std::move(host)) {
  network_.topology().AddHost(host_);
  // Publishers reach the broker through this RPC; the broker fans out.
  network_.RegisterRpc(
      host_, "pubsub.publish",
      [this](const HostId& publisher, const util::Json& req)
          -> util::StatusOr<util::Json> {
        (void)publisher;
        ++publishes_;
        if (telemetry::Enabled()) {
          telemetry::Global().metrics.Add("myrtus_pubsub_publishes_total");
        }
        const std::string topic = req.at("topic").as_string();
        const auto body_bytes =
            static_cast<std::size_t>(req.at("bytes").as_int());
        int fanout = 0;
        for (const Subscription& sub : subscriptions_) {
          if (!TopicMatches(sub.filter, topic)) continue;
          ++fanout;
          util::Json event = util::Json::MakeObject()
                                 .Set("topic", topic)
                                 .Set("filter", sub.filter)
                                 .Set("payload", req.at("payload"));
          network_.CallWithRetry(
              host_, sub.subscriber, "pubsub.deliver", std::move(event),
              [this](util::StatusOr<util::Json> reply) {
                if (reply.ok()) {
                  ++deliveries_;
                  if (telemetry::Enabled()) {
                    telemetry::Global().metrics.Add(
                        "myrtus_pubsub_deliveries_total");
                  }
                }
              },
              retry_policy_, Protocol::kMqtt);
          (void)body_bytes;
        }
        if (telemetry::Enabled()) {
          // Annotate the surrounding rpc.serve pubsub.publish span.
          auto& tracer = telemetry::Global().tracer;
          tracer.SetAttribute(tracer.current(), "topic", topic);
          tracer.SetAttribute(tracer.current(), "fanout", std::to_string(fanout));
        }
        return util::Json::MakeObject().Set("fanout", fanout);
      });
}

void Broker::Subscribe(const HostId& subscriber, const std::string& topic_filter,
                       Subscriber handler) {
  subscriptions_.push_back(Subscription{subscriber, topic_filter});
  handlers_[{subscriber, topic_filter}] = std::move(handler);
  // Install (or refresh) the subscriber-side delivery endpoint.
  network_.RegisterRpc(
      subscriber, "pubsub.deliver",
      [this, subscriber](const HostId&, const util::Json& event)
          -> util::StatusOr<util::Json> {
        const std::string topic = event.at("topic").as_string();
        const std::string filter = event.at("filter").as_string();
        const auto it = handlers_.find({subscriber, filter});
        if (it != handlers_.end() && it->second) {
          it->second(topic, event.at("payload"));
        }
        return util::Json::MakeObject().Set("ack", true);
      });
}

void Broker::Unsubscribe(const HostId& subscriber,
                         const std::string& topic_filter) {
  std::erase_if(subscriptions_, [&](const Subscription& s) {
    return s.subscriber == subscriber && s.filter == topic_filter;
  });
  handlers_.erase({subscriber, topic_filter});
}

void Broker::Publish(const HostId& publisher, const std::string& topic,
                     util::Json payload, std::size_t body_bytes) {
  util::Json req = util::Json::MakeObject()
                       .Set("topic", topic)
                       .Set("payload", std::move(payload))
                       .Set("bytes", body_bytes);
  network_.CallWithRetry(
      publisher, host_, "pubsub.publish", std::move(req),
      [](util::StatusOr<util::Json>) {}, retry_policy_, Protocol::kMqtt);
}

}  // namespace myrtus::net
