// Smart-gateway services (§III: the gateway is "extremely flexible in terms
// of connectivity interfaces … natively supports several protocols" and acts
// as the edge↔cloud data hub [5]). Three composable services on a gateway
// host:
//   * ProtocolBridge — re-frames traffic between protocol worlds (a CoAP
//     sensor reaches an HTTP cloud endpoint through the gateway), charging
//     each leg its own protocol overhead.
//   * UplinkAggregator — store-and-forward batching: small sensor readings
//     are coalesced into one upstream message per window, trading latency
//     for radically fewer uplink bytes.
//   * Custom adapters — user-registered message transformers ("customizable
//     with ad-hoc user-defined interfaces").
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace myrtus::net {

class SmartGateway {
 public:
  SmartGateway(Network& network, HostId host);

  [[nodiscard]] const HostId& host() const { return host_; }

  /// --- Protocol bridging --------------------------------------------------
  /// Routes messages of `kind` arriving at the gateway onward to `upstream`,
  /// re-framed as `upstream_protocol`. Returns the rule id.
  int AddBridgeRule(const std::string& kind, HostId upstream,
                    Protocol upstream_protocol, int priority = 0);
  void RemoveBridgeRule(int rule_id);

  /// --- Uplink aggregation ---------------------------------------------------
  /// Messages of `kind` are buffered and flushed to `upstream` as one batch
  /// ("gw.batch") every `window`, or earlier when `max_batch` readings are
  /// buffered. Aggregated batches ride the bulk slice (priority 0).
  void EnableAggregation(const std::string& kind, HostId upstream,
                         sim::SimTime window, std::size_t max_batch = 64);

  /// --- Custom adapters --------------------------------------------------------
  /// Transformer applied to matching messages before bridging; returning
  /// false drops the message (filtering at the edge).
  using Adapter = std::function<bool(Message& msg)>;
  void AddAdapter(const std::string& kind, Adapter adapter);

  /// Counters.
  [[nodiscard]] std::uint64_t bridged() const { return bridged_; }
  [[nodiscard]] std::uint64_t aggregated_in() const { return aggregated_in_; }
  [[nodiscard]] std::uint64_t batches_out() const { return batches_out_; }
  [[nodiscard]] std::uint64_t dropped_by_adapter() const { return dropped_; }
  /// Upstream sends rejected by the network (e.g. no route): bridged messages
  /// and flushed batches that never left the gateway.
  [[nodiscard]] std::uint64_t upstream_send_failures() const {
    return upstream_send_failures_;
  }

 private:
  struct BridgeRule {
    int id;
    std::string kind;
    HostId upstream;
    Protocol protocol;
    int priority;
  };
  struct AggregationRule {
    HostId upstream;
    sim::SimTime window;
    std::size_t max_batch;
    std::vector<util::Json> buffer;
    std::size_t buffered_bytes = 0;
    bool flush_scheduled = false;
  };

  void OnMessage(const Message& msg);
  void Flush(const std::string& kind);
  /// Sends to an upstream, counting (rather than discarding) failures.
  bool SendUpstream(Message msg);

  Network& network_;
  HostId host_;
  std::vector<BridgeRule> bridges_;
  std::map<std::string, AggregationRule> aggregations_;
  std::map<std::string, std::vector<Adapter>> adapters_;
  int next_rule_id_ = 1;
  std::uint64_t bridged_ = 0;
  std::uint64_t aggregated_in_ = 0;
  std::uint64_t batches_out_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t upstream_send_failures_ = 0;
};

}  // namespace myrtus::net
