// MQTT-style publish/subscribe broker — the paper's smart gateway acts as
// "a hub for data exchange among a diversity of actors at the edge" (§III
// Data Management). The broker is itself a host on the topology: publishes
// travel publisher→broker, then fan out broker→subscriber, each leg paying
// real (simulated) network cost.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/transport.hpp"

namespace myrtus::net {

/// Topic filters support MQTT-style wildcards: '+' matches one level,
/// a trailing '#' matches any suffix. Levels separated by '/'.
bool TopicMatches(const std::string& filter, const std::string& topic);

class Broker {
 public:
  /// `host` is the broker's address on the network (e.g. the smart gateway).
  Broker(Network& network, HostId host);

  /// Subscribes a host. `handler` runs on the subscriber side when a
  /// publication is delivered to it over the network.
  using Subscriber = std::function<void(const std::string& topic,
                                        const util::Json& payload)>;
  void Subscribe(const HostId& subscriber, const std::string& topic_filter,
                 Subscriber handler);
  void Unsubscribe(const HostId& subscriber, const std::string& topic_filter);

  /// Publishes from `publisher`; payload is fanned out to all matching
  /// subscribers. `body_bytes` models the sensor payload size (0 = derive
  /// from JSON encoding).
  void Publish(const HostId& publisher, const std::string& topic,
               util::Json payload, std::size_t body_bytes = 0);

  [[nodiscard]] std::uint64_t publishes() const { return publishes_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] const HostId& host() const { return host_; }

  /// Policy both broker legs (publish, deliver) run under. Note retried
  /// publishes are at-least-once: a retry after a lost *reply* re-runs the
  /// fan-out.
  void set_retry_policy(RetryPolicy policy) { retry_policy_ = policy; }
  [[nodiscard]] const RetryPolicy& retry_policy() const {
    return retry_policy_;
  }

 private:
  struct Subscription {
    HostId subscriber;
    std::string filter;
  };

  Network& network_;
  HostId host_;
  /// Defaults preserve the historical single-attempt 5 s Call timeout per
  /// try while adding two retries for flaky edge links.
  RetryPolicy retry_policy_ = [] {
    RetryPolicy p;
    p.max_attempts = 3;
    p.attempt_timeout = sim::SimTime::Seconds(5);
    p.overall_deadline = sim::SimTime::Seconds(20);
    return p;
  }();
  std::vector<Subscription> subscriptions_;
  // Handlers keyed by (subscriber, filter); invoked on subscriber delivery.
  std::map<std::pair<HostId, std::string>, Subscriber> handlers_;
  std::uint64_t publishes_ = 0;
  std::uint64_t deliveries_ = 0;
};

}  // namespace myrtus::net
