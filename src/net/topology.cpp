#include "net/topology.hpp"

#include <algorithm>
#include <queue>

namespace myrtus::net {

void Topology::AddHost(const HostId& id) {
  if (host_index_.count(id) > 0) return;
  host_index_[id] = hosts_.size();
  hosts_.push_back(id);
  out_links_.emplace_back();
  routes_dirty_ = true;
}

void Topology::AddLink(Link link) {
  AddHost(link.from);
  AddHost(link.to);
  const std::size_t index = links_.size();
  out_links_[host_index_[link.from]].push_back(index);
  links_.push_back(std::move(link));
  link_up_.push_back(true);
  routes_dirty_ = true;
}

void Topology::AddBidirectional(const HostId& a, const HostId& b,
                                sim::SimTime latency, double bandwidth_bps,
                                double loss_rate, sim::SimTime jitter) {
  AddLink(Link{a, b, latency, bandwidth_bps, loss_rate, jitter});
  AddLink(Link{b, a, latency, bandwidth_bps, loss_rate, jitter});
}

bool Topology::HasHost(const HostId& id) const {
  return host_index_.count(id) > 0;
}

void Topology::SetLinkUp(std::size_t index, bool up) {
  if (index < link_up_.size() && link_up_[index] != up) {
    link_up_[index] = up;
    routes_dirty_ = true;
  }
}

bool Topology::IsLinkUp(std::size_t index) const {
  return index < link_up_.size() && link_up_[index];
}

void Topology::EnsureRoutesFresh() const {
  if (!routes_dirty_) return;
  const std::size_t n = hosts_.size();
  next_link_.assign(n, std::vector<std::int32_t>(n, -1));

  // Dijkstra from every source. Control-plane topologies are small (tens to
  // low hundreds of hosts), so O(V * E log V) is fine.
  for (std::size_t src = 0; src < n; ++src) {
    std::vector<std::int64_t> dist(n, std::numeric_limits<std::int64_t>::max());
    std::vector<std::int32_t> first_link(n, -1);
    using QItem = std::pair<std::int64_t, std::size_t>;  // (dist, host)
    std::priority_queue<QItem, std::vector<QItem>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d != dist[u]) continue;
      for (const std::size_t li : out_links_[u]) {
        if (!link_up_[li]) continue;
        const Link& l = links_[li];
        const std::size_t v = host_index_.at(l.to);
        const std::int64_t nd = d + l.latency.ns;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_link[v] = (u == src) ? static_cast<std::int32_t>(li) : first_link[u];
          pq.emplace(nd, v);
        }
      }
    }
    next_link_[src] = std::move(first_link);
  }
  routes_dirty_ = false;
}

util::StatusOr<Route> Topology::FindRoute(const HostId& from,
                                          const HostId& to) const {
  const auto fit = host_index_.find(from);
  const auto tit = host_index_.find(to);
  if (fit == host_index_.end() || tit == host_index_.end()) {
    return util::Status::NotFound("unknown host in route query");
  }
  if (fit->second == tit->second) {
    return Route{};  // loopback: empty path, zero latency
  }
  EnsureRoutesFresh();

  Route route;
  std::size_t cur = fit->second;
  const std::size_t dst = tit->second;
  route.min_bandwidth_bps = std::numeric_limits<double>::max();
  // Walk first-hop pointers; bounded by host count to guard against cycles.
  for (std::size_t step = 0; step <= hosts_.size(); ++step) {
    if (cur == dst) {
      if (route.link_indices.empty()) break;
      return route;
    }
    const std::int32_t li = next_link_[cur][dst];
    if (li < 0) break;
    const Link& l = links_[static_cast<std::size_t>(li)];
    route.link_indices.push_back(static_cast<std::size_t>(li));
    route.propagation += l.latency;
    route.min_bandwidth_bps = std::min(route.min_bandwidth_bps, l.bandwidth_bps);
    cur = host_index_.at(l.to);
  }
  if (cur == dst && !route.link_indices.empty()) return route;
  return util::Status::NotFound("no route from " + from + " to " + to);
}

}  // namespace myrtus::net
