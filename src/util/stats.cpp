#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace myrtus::util {

void RunningStat::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n = static_cast<double>(n_ + other.n_);
  m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                         static_cast<double>(other.n_) / n;
  mean_ = (mean_ * static_cast<double>(n_) +
           other.mean_ * static_cast<double>(other.n_)) / n;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  n_ += other.n_;
}

void RunningStat::Reset() { *this = RunningStat{}; }

double RunningStat::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  return std::accumulate(xs_.begin(), xs_.end(), 0.0) /
         static_cast<double>(xs_.size());
}

double Samples::Quantile(double q) const {
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

void Log2Histogram::Add(double x) {
  ++total_;
  if (x < 1.0) {
    ++buckets_[0];
    return;
  }
  const int b = std::min<int>(63, 1 + static_cast<int>(std::log2(x)));
  ++buckets_[static_cast<std::size_t>(b)];
}

std::string Log2Histogram::ToString() const {
  std::string out;
  std::uint64_t lo = 0;
  std::uint64_t hi = 1;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] != 0) {
      out += "[" + std::to_string(lo) + ", " + std::to_string(hi) +
             "): " + std::to_string(buckets_[i]) + "\n";
    }
    lo = hi;
    hi <<= 1;
  }
  return out;
}

}  // namespace myrtus::util
