// Status / StatusOr: exception-free error propagation used across all MYRTUS
// libraries. Modeled after the absl::Status design: a small value type with a
// canonical error code and a human-readable message.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace myrtus::util {

/// Canonical error space shared by every subsystem.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kPermissionDenied,
  kUnauthenticated,
  kDeadlineExceeded,
  kAborted,
  kUnimplemented,
  kInternal,
  kDataLoss,
};

/// Human-readable name of a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

/// Value type describing the outcome of an operation. [[nodiscard]] at class
/// level: ignoring a Status is a bug unless explicitly justified with a
/// `// LINT: discard(<reason>)` annotation next to a `(void)` cast.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }
  static Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
  static Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
  static Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
  static Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
  static Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
  static Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }
  static Status PermissionDenied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
  static Status Unauthenticated(std::string m) { return {StatusCode::kUnauthenticated, std::move(m)}; }
  static Status DeadlineExceeded(std::string m) { return {StatusCode::kDeadlineExceeded, std::move(m)}; }
  static Status Aborted(std::string m) { return {StatusCode::kAborted, std::move(m)}; }
  static Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
  static Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
  static Status DataLoss(std::string m) { return {StatusCode::kDataLoss, std::move(m)}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "CODE: message" rendering for logs and test failure output.
  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of T or a non-OK Status. T must be movable.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): implicit by design, like absl.
  StatusOr(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {}

  [[nodiscard]] bool ok() const { return status_.ok() && value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Precondition: ok(). Accessing the value of a failed StatusOr is UB by
  /// contract (checked via assert in debug builds of callers).
  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Aborts with a diagnostic when `s` is not OK. For call sites where a
/// failure would mean a broken internal invariant (e.g. rebuilding a graph
/// from an already-validated one), not a recoverable runtime error.
void MustOk(const Status& s);

template <typename T>
void MustOk(const StatusOr<T>& s) {
  MustOk(s.status());
}

/// RETURN_IF_ERROR-style helpers (macro-free variants are preferred in
/// expression contexts; these macros keep call sites terse in .cpp files).
#define MYRTUS_RETURN_IF_ERROR(expr)                      \
  do {                                                    \
    ::myrtus::util::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                            \
  } while (0)

#define MYRTUS_ASSIGN_OR_RETURN(lhs, expr)                \
  auto _sor_##__LINE__ = (expr);                          \
  if (!_sor_##__LINE__.ok()) return _sor_##__LINE__.status(); \
  lhs = std::move(_sor_##__LINE__).value()

}  // namespace myrtus::util
