#include "util/parallel.hpp"

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>  // sanctioned: util/parallel is the lint determinism allowlist's one thread home

namespace myrtus::util {
namespace {

// Set while the current thread is executing a shard body; nested parallel
// regions started from inside a body run inline instead of re-entering the
// pool (re-entry could deadlock: every worker could block waiting for
// workers).
thread_local bool t_in_region = false;

struct Counters {
  std::atomic<std::uint64_t> regions{0};
  std::atomic<std::uint64_t> pooled_regions{0};
  std::atomic<std::uint64_t> shards{0};
  std::atomic<std::uint64_t> items{0};
};
Counters& GlobalCounters() {
  static Counters counters;
  return counters;
}

/// One fork-join region in flight. Owned by shared_ptr so a worker that
/// wakes late — after the region already drained — still holds a valid
/// object: it observes next >= shards and leaves without ever touching fn.
struct Job {
  std::function<void(std::size_t)> fn;
  std::size_t shards = 0;
  std::atomic<std::size_t> next{0};
  std::size_t done = 0;  // guarded by Pool::job_mu_
};

/// Fixed-size fork-join pool. Lazily started on the first region that wants
/// more than one worker; resized (join + respawn) when SetParallelWorkers
/// changes the count. One region runs at a time (regions_mu_): callers queue
/// behind each other, which matches the single-orchestrator call pattern and
/// keeps the claim/commit protocol trivial to reason about.
class Pool {
 public:
  static Pool& Instance() {
    static Pool pool;
    return pool;
  }

  int workers() const {
    std::lock_guard<std::mutex> lock(config_mu_);
    return workers_;
  }

  int threads_started() const {
    std::lock_guard<std::mutex> lock(config_mu_);
    return static_cast<int>(threads_.size());
  }

  /// Must not be called from inside a shard body (it waits for the active
  /// region to finish first).
  void SetWorkers(int workers) {
    if (workers < 0) workers = 0;
    std::lock_guard<std::mutex> region_lock(regions_mu_);
    std::lock_guard<std::mutex> lock(config_mu_);
    if (workers == workers_) return;
    StopThreadsLocked();
    workers_ = workers;
    // Threads restart lazily on the next pooled region.
  }

  void Run(std::size_t shard_count,
           const std::function<void(std::size_t)>& shard_fn) {
    if (shard_count == 0) return;
    if (t_in_region) {  // nested region: run inline on this worker
      for (std::size_t s = 0; s < shard_count; ++s) shard_fn(s);
      return;
    }
    std::lock_guard<std::mutex> region_lock(regions_mu_);
    int want = 1;
    {
      std::lock_guard<std::mutex> lock(config_mu_);
      want = workers_;
      if (want > 1 && shard_count > 1) EnsureThreadsLocked();
    }
    if (want <= 1 || shard_count <= 1) {
      t_in_region = true;
      for (std::size_t s = 0; s < shard_count; ++s) shard_fn(s);
      t_in_region = false;
      return;
    }

    GlobalCounters().pooled_regions.fetch_add(1, std::memory_order_relaxed);
    auto job = std::make_shared<Job>();
    job->fn = shard_fn;
    job->shards = shard_count;
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      job_ = job;
      ++job_generation_;
    }
    work_cv_.notify_all();

    // The caller is a worker too: claim shards until the region drains.
    t_in_region = true;
    Drain(*job);
    t_in_region = false;

    std::unique_lock<std::mutex> lock(job_mu_);
    done_cv_.wait(lock, [&] { return job->done == job->shards; });
    job_.reset();
  }

 private:
  Pool() = default;

  ~Pool() {
    std::lock_guard<std::mutex> lock(config_mu_);
    StopThreadsLocked();
  }

  void Drain(Job& job) {
    std::size_t finished = 0;
    while (true) {
      const std::size_t s = job.next.fetch_add(1, std::memory_order_relaxed);
      if (s >= job.shards) break;
      job.fn(s);
      ++finished;
    }
    if (finished > 0) {
      std::lock_guard<std::mutex> lock(job_mu_);
      job.done += finished;
      if (job.done == job.shards) done_cv_.notify_all();
    }
  }

  void WorkerLoop() {
    std::uint64_t seen_generation = 0;
    while (true) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(job_mu_);
        work_cv_.wait(lock, [&] {
          return stop_threads_ ||
                 (job_ != nullptr && job_generation_ != seen_generation);
        });
        if (stop_threads_) return;
        seen_generation = job_generation_;
        job = job_;
      }
      t_in_region = true;
      Drain(*job);
      t_in_region = false;
    }
  }

  void EnsureThreadsLocked() {
    const std::size_t want =
        workers_ > 1 ? static_cast<std::size_t>(workers_ - 1) : 0;
    for (std::size_t i = threads_.size(); i < want; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  void StopThreadsLocked() {
    if (threads_.empty()) return;
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      stop_threads_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    threads_.clear();
    {
      std::lock_guard<std::mutex> lock(job_mu_);
      stop_threads_ = false;
    }
  }

  /// Serializes whole regions (and reconfiguration) against each other.
  std::mutex regions_mu_;

  mutable std::mutex config_mu_;
  int workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex job_mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::shared_ptr<Job> job_;
  std::uint64_t job_generation_ = 0;
  bool stop_threads_ = false;
};

Shard MakeShard(std::size_t index, std::size_t count, std::size_t n) {
  Shard shard;
  shard.index = index;
  shard.count = count;
  shard.begin = index * n / count;
  shard.end = (index + 1) * n / count;
  return shard;
}

}  // namespace

int ParallelWorkers() { return Pool::Instance().workers(); }

void SetParallelWorkers(int workers) { Pool::Instance().SetWorkers(workers); }

std::size_t ParallelShardCount(std::size_t n) {
  return n < kParallelMaxShards ? n : kParallelMaxShards;
}

ParallelPoolStats ParallelStats() {
  Counters& counters = GlobalCounters();
  ParallelPoolStats stats;
  stats.regions = counters.regions.load(std::memory_order_relaxed);
  stats.pooled_regions = counters.pooled_regions.load(std::memory_order_relaxed);
  stats.shards = counters.shards.load(std::memory_order_relaxed);
  stats.items = counters.items.load(std::memory_order_relaxed);
  stats.workers = Pool::Instance().workers();
  stats.threads_started = Pool::Instance().threads_started();
  return stats;
}

void ParallelFor(std::size_t n, const std::function<void(const Shard&)>& body) {
  if (n == 0) return;
  const std::size_t count = ParallelShardCount(n);
  Counters& counters = GlobalCounters();
  counters.regions.fetch_add(1, std::memory_order_relaxed);
  counters.shards.fetch_add(count, std::memory_order_relaxed);
  counters.items.fetch_add(n, std::memory_order_relaxed);
  Pool::Instance().Run(count, [&](std::size_t index) {
    body(MakeShard(index, count, n));
  });
}

void ParallelForRng(std::size_t n, std::uint64_t seed, std::string_view stream,
                    const std::function<void(const Shard&, Rng&)>& body) {
  if (n == 0) return;
  const std::string stream_name(stream);  // outlive the region on all threads
  ParallelFor(n, [&, seed](const Shard& shard) {
    Rng rng(seed, stream_name, shard.index);
    body(shard, rng);
  });
}

}  // namespace myrtus::util
