// Unit-of-measure helpers: the named conversion vocabulary myrtus-lint's
// unit-mismatch rule recognizes, plus the saturating subtraction clamp the
// unsigned-underflow rule recommends.
//
// The codebase encodes dimensions in identifier suffixes (`_ns`, `_mb`,
// `_mw`, ...; see docs/LINTING.md for the inference table). Converting
// between units therefore goes through a helper named `<From>To<To>` so the
// conversion is visible at the call site and the analyzer can type the
// result: `deadline_ns = util::MsToNs(budget_ms)` passes the lint;
// `deadline_ns = budget_ms` does not.
//
// Integer-grid time conversions (ns/us/ms) and byte conversions stay in
// std::uint64_t — downward conversions floor, matching ledger semantics.
// Conversions touching seconds, ratios, or the power/energy pair are double:
// those quantities are fractional throughout the tree.
#pragma once

#include <cstdint>
#include <type_traits>

namespace myrtus::util {

/// Saturating unsigned subtraction: `a - b` clamped at zero. The sanctioned
/// spelling for ledger-style frees (capacity - allocated) where the ledger
/// may legitimately run over and an unsigned wrap would read as "plenty of
/// room".
template <typename T>
[[nodiscard]] constexpr T SubSat(T a, T b) {
  static_assert(std::is_unsigned_v<T>,
                "SubSat clamps unsigned wrap; use std::max for signed types");
  return a > b ? a - b : T{0};
}

// --- time: integer grid -----------------------------------------------------

[[nodiscard]] constexpr std::uint64_t UsToNs(std::uint64_t us) { return us * 1000; }
[[nodiscard]] constexpr std::uint64_t MsToNs(std::uint64_t ms) { return ms * 1000000; }
[[nodiscard]] constexpr std::uint64_t MsToUs(std::uint64_t ms) { return ms * 1000; }
[[nodiscard]] constexpr std::uint64_t NsToUs(std::uint64_t ns) { return ns / 1000; }
[[nodiscard]] constexpr std::uint64_t NsToMs(std::uint64_t ns) { return ns / 1000000; }
[[nodiscard]] constexpr std::uint64_t UsToMs(std::uint64_t us) { return us / 1000; }

// --- time: seconds are double ----------------------------------------------

[[nodiscard]] constexpr double NsToS(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }
[[nodiscard]] constexpr double UsToS(std::uint64_t us) { return static_cast<double>(us) * 1e-6; }
[[nodiscard]] constexpr double MsToS(std::uint64_t ms) { return static_cast<double>(ms) * 1e-3; }
[[nodiscard]] constexpr std::uint64_t SToNs(double s) { return static_cast<std::uint64_t>(s * 1e9); }
[[nodiscard]] constexpr std::uint64_t SToUs(double s) { return static_cast<std::uint64_t>(s * 1e6); }
[[nodiscard]] constexpr std::uint64_t SToMs(double s) { return static_cast<std::uint64_t>(s * 1e3); }

// --- bytes ------------------------------------------------------------------

[[nodiscard]] constexpr std::uint64_t KbToB(std::uint64_t kb) { return kb * 1024; }
[[nodiscard]] constexpr std::uint64_t MbToB(std::uint64_t mb) { return mb * 1024 * 1024; }
[[nodiscard]] constexpr std::uint64_t MbToKb(std::uint64_t mb) { return mb * 1024; }
[[nodiscard]] constexpr std::uint64_t BToKb(std::uint64_t b) { return b / 1024; }
[[nodiscard]] constexpr std::uint64_t BToMb(std::uint64_t b) { return b / (1024 * 1024); }
[[nodiscard]] constexpr std::uint64_t KbToMb(std::uint64_t kb) { return kb / 1024; }

// --- ratios -----------------------------------------------------------------

[[nodiscard]] constexpr double PctToFrac(double pct) { return pct / 100.0; }
[[nodiscard]] constexpr double FracToPct(double frac) { return frac * 100.0; }

// --- power / energy ---------------------------------------------------------

/// Power sustained over a duration is energy: mW * s = mJ. The two-argument
/// shape is the point — energy never comes from a power figure alone, which
/// is exactly the pre-PR-7 `energy_mw` bug the unit rule now catches.
[[nodiscard]] constexpr double MwToMj(double mw, double s) { return mw * s; }

/// Average power of an energy spent over a duration: mJ / s = mW.
[[nodiscard]] constexpr double MjToMw(double mj, double s) { return s > 0.0 ? mj / s : 0.0; }

}  // namespace myrtus::util
