#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace myrtus::util {
namespace {

const Json kNullJson{};
const Json::Array kEmptyArray{};
const Json::Object kEmptyObject{};
const std::string kEmptyString{};

void EscapeString(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char raw : s) {
    auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(raw);
        }
    }
  }
  out.push_back('"');
}

/// Recursive-descent parser over a string_view with position tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<Json> Run() {
    SkipWs();
    auto v = ParseValue();
    if (!v.ok()) return v;
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(std::string msg) const {
    return Status::InvalidArgument("json at offset " + std::to_string(pos_) +
                                   ": " + std::move(msg));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  StatusOr<Json> ParseValue() {
    if (depth_ > 128) return Err("nesting too deep");
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        auto s = ParseString();
        if (!s.ok()) return s.status();
        return Json(std::move(s).value());
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") { pos_ += 4; return Json(true); }
        return Err("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") { pos_ += 5; return Json(false); }
        return Err("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") { pos_ += 4; return Json(nullptr); }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  StatusOr<std::string> ParseString() {
    if (!Consume('"')) return Err("expected '\"'");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("dangling escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else return Err("bad hex digit in \\u escape");
            }
            // UTF-8 encode the BMP code point (surrogate pairs re-encoded
            // individually; sufficient for our control-plane payloads).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xC0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            } else {
              out.push_back(static_cast<char>(0xE0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
            }
            break;
          }
          default:
            return Err("unknown escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  StatusOr<Json> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool is_float = false;
    if (Consume('.')) {
      is_float = true;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_float = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") return Err("invalid number");
    if (!is_float) {
      std::int64_t v = 0;
      const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Json(v);
      // fall through to double on overflow
    }
    double d = 0.0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) return Err("invalid number");
    return Json(d);
  }

  StatusOr<Json> ParseArray() {
    Consume('[');
    ++depth_;
    Json::Array arr;
    SkipWs();
    if (Consume(']')) { --depth_; return Json(std::move(arr)); }
    while (true) {
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      arr.push_back(std::move(v).value());
      SkipWs();
      if (Consume(']')) break;
      if (!Consume(',')) return Err("expected ',' or ']'");
    }
    --depth_;
    return Json(std::move(arr));
  }

  StatusOr<Json> ParseObject() {
    Consume('{');
    ++depth_;
    Json::Object obj;
    SkipWs();
    if (Consume('}')) { --depth_; return Json(std::move(obj)); }
    while (true) {
      SkipWs();
      auto key = ParseString();
      if (!key.ok()) return key.status();
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      auto v = ParseValue();
      if (!v.ok()) return v;
      obj[std::move(key).value()] = std::move(v).value();
      SkipWs();
      if (Consume('}')) break;
      if (!Consume(',')) return Err("expected ',' or '}'");
    }
    --depth_;
    return Json(std::move(obj));
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool Json::as_bool(bool fallback) const {
  if (const bool* b = std::get_if<bool>(&v_)) return *b;
  return fallback;
}

std::int64_t Json::as_int(std::int64_t fallback) const {
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return *i;
  if (const auto* d = std::get_if<double>(&v_)) return static_cast<std::int64_t>(*d);
  return fallback;
}

double Json::as_double(double fallback) const {
  if (const auto* d = std::get_if<double>(&v_)) return *d;
  if (const auto* i = std::get_if<std::int64_t>(&v_)) return static_cast<double>(*i);
  return fallback;
}

const std::string& Json::as_string() const {
  if (const auto* s = std::get_if<std::string>(&v_)) return *s;
  return kEmptyString;
}

const Json::Array& Json::items() const {
  if (const auto* a = std::get_if<Array>(&v_)) return *a;
  return kEmptyArray;
}

Json::Array& Json::mutable_items() {
  if (!is_array()) v_ = Array{};
  return std::get<Array>(v_);
}

const Json::Object& Json::fields() const {
  if (const auto* o = std::get_if<Object>(&v_)) return *o;
  return kEmptyObject;
}

Json::Object& Json::mutable_fields() {
  if (!is_object()) v_ = Object{};
  return std::get<Object>(v_);
}

const Json& Json::at(std::string_view key) const {
  if (const auto* o = std::get_if<Object>(&v_)) {
    const auto it = o->find(std::string(key));
    if (it != o->end()) return it->second;
  }
  return kNullJson;
}

bool Json::has(std::string_view key) const {
  const auto* o = std::get_if<Object>(&v_);
  return o != nullptr && o->count(std::string(key)) > 0;
}

Json& Json::Set(std::string key, Json value) {
  mutable_fields()[std::move(key)] = std::move(value);
  return *this;
}

Json& Json::Append(Json value) {
  mutable_items().push_back(std::move(value));
  return *this;
}

void Json::DumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&] {
    if (indent > 0) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(indent * depth), ' ');
    }
  };
  if (is_null()) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&v_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&v_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&v_)) {
    if (std::isfinite(*d)) {
      char buf[40];
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      out += buf;
      // Integral doubles keep a ".0" so they reparse as doubles, not ints.
      if (out.find_first_of(".eE", out.size() - std::strlen(buf)) ==
          std::string::npos) {
        out += ".0";
      }
    } else {
      out += "null";  // JSON has no Inf/NaN
    }
  } else if (const auto* s = std::get_if<std::string>(&v_)) {
    EscapeString(*s, out);
  } else if (const auto* a = std::get_if<Array>(&v_)) {
    out.push_back('[');
    bool first = true;
    for (const Json& item : *a) {
      if (!first) out.push_back(',');
      first = false;
      ++depth;
      newline();
      --depth;
      item.DumpTo(out, indent, depth + 1);
    }
    if (!a->empty()) newline();
    out.push_back(']');
  } else if (const auto* o = std::get_if<Object>(&v_)) {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, item] : *o) {
      if (!first) out.push_back(',');
      first = false;
      ++depth;
      newline();
      --depth;
      EscapeString(k, out);
      out.push_back(':');
      if (indent > 0) out.push_back(' ');
      item.DumpTo(out, indent, depth + 1);
    }
    if (!o->empty()) newline();
    out.push_back('}');
  }
}

std::string Json::Dump() const {
  std::string out;
  DumpTo(out, 0, 0);
  return out;
}

std::string Json::Pretty() const {
  std::string out;
  DumpTo(out, 2, 0);
  return out;
}

StatusOr<Json> Json::Parse(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace myrtus::util
