// Byte-buffer helpers shared by the security and network substrates:
// hex/base-like encodings, endian load/store, and constant-time comparison.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.hpp"

namespace myrtus::util {

using Bytes = std::vector<std::uint8_t>;

/// Lowercase hex encoding of a byte span.
std::string ToHex(const std::uint8_t* data, std::size_t len);
inline std::string ToHex(const Bytes& b) { return ToHex(b.data(), b.size()); }

/// Parses a hex string (case-insensitive, even length). Fails on any
/// non-hex character.
StatusOr<Bytes> FromHex(std::string_view hex);

/// Bytes from a string literal / string payload (no copy avoidance intended;
/// used for tests and small control messages).
Bytes BytesOf(std::string_view s);
std::string StringOf(const Bytes& b);

/// Big-endian 32/64-bit loads and stores (FIPS hash/cipher conventions).
inline std::uint32_t LoadBe32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
inline std::uint64_t LoadBe64(const std::uint8_t* p) {
  return (std::uint64_t{LoadBe32(p)} << 32) | LoadBe32(p + 4);
}
inline void StoreBe32(std::uint32_t v, std::uint8_t* p) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline void StoreBe64(std::uint64_t v, std::uint8_t* p) {
  StoreBe32(static_cast<std::uint32_t>(v >> 32), p);
  StoreBe32(static_cast<std::uint32_t>(v), p + 4);
}

/// Little-endian 64-bit load/store (used by ASCON's spec test vectors and
/// internal counters).
inline std::uint64_t LoadLe64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  std::memcpy(&v, p, 8);  // host is little-endian on all supported targets
  return v;
}
inline void StoreLe64(std::uint64_t v, std::uint8_t* p) { std::memcpy(p, &v, 8); }

/// Constant-time equality over equal-length buffers; returns false when
/// lengths differ (length is not secret in our protocols).
bool ConstantTimeEqual(const Bytes& a, const Bytes& b);

/// 64-bit FNV-1a — non-cryptographic hash for sharding and interning.
std::uint64_t Fnv1a64(std::string_view s);

}  // namespace myrtus::util
