// Deterministic fork-join runtime. The one sanctioned home for host threads
// in the MYRTUS tree (the lint determinism rule allowlists exactly this
// module): everything else draws parallelism through ParallelFor/Map/Reduce,
// which guarantee that a region's result is a pure function of its inputs —
// never of the worker count or of thread scheduling.
//
// The determinism contract (see docs/PARALLELISM.md):
//   * Work over [0, n) is split into static contiguous shards whose count
//     and boundaries depend only on n — not on the configured worker count.
//   * Shard bodies may not communicate; results are committed to
//     shard-index-indexed slots and folded in shard-index order, so
//     floating-point reduction order is fixed.
//   * Randomness comes from per-shard util::Rng substreams derived from a
//     named parent stream: shard i of stream (seed, name) always draws the
//     same sequence, whether it ran on the caller's thread or on worker 7.
// Consequence: SetParallelWorkers(0), (1) and (64) produce byte-identical
// output, which is what tests/parallel_test.cpp locks in.
#pragma once

#include <cstdint>
#include <functional>
#include <string_view>
#include <utility>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace myrtus::util {

/// One static contiguous slice of a parallel region's index space.
struct Shard {
  std::size_t index = 0;  // shard number, 0..count-1
  std::size_t count = 1;  // total shards in this region
  std::size_t begin = 0;  // first item (inclusive)
  std::size_t end = 0;    // last item (exclusive)
  /// Items in this shard. The sharder guarantees begin <= end; the clamp
  /// keeps a hand-built degenerate Shard from wrapping.
  [[nodiscard]] std::size_t size() const { return SubSat(end, begin); }
};

/// Configured worker count. 0 and 1 both mean "run regions inline on the
/// calling thread"; N > 1 lazily starts N-1 pool threads (the caller is the
/// Nth worker). The default is 1: parallelism is opt-in per process (benches
/// and the MIRTO loop turn it on), and because of the determinism contract
/// the choice is invisible in every computed result.
int ParallelWorkers();
void SetParallelWorkers(int workers);

/// Shard count for a region over [0, n): min(n, kParallelMaxShards). A pure
/// function of n so substream assignment survives worker-count changes.
std::size_t ParallelShardCount(std::size_t n);
inline constexpr std::size_t kParallelMaxShards = 64;

/// Monotonic counters describing pool usage since process start (telemetry
/// bridges these into the metrics registry, see telemetry::EmitParallelPoolStats).
struct ParallelPoolStats {
  std::uint64_t regions = 0;         // fork-join regions executed
  std::uint64_t pooled_regions = 0;  // of which ran on the worker pool
  std::uint64_t shards = 0;          // shards executed
  std::uint64_t items = 0;           // items covered by those shards
  int workers = 1;                   // current configured worker count
  int threads_started = 0;           // pool threads currently alive
};
ParallelPoolStats ParallelStats();

/// Runs `body(shard)` for every shard of [0, n). Blocks until all shards
/// finish. Bodies must only write state disjoint per shard (or per item);
/// the return from ParallelFor is a full barrier. Nested calls from inside a
/// body run inline (no worker re-entry), so helpers that parallelize
/// internally stay safe to call from a parallel region.
void ParallelFor(std::size_t n, const std::function<void(const Shard&)>& body);

/// ParallelFor with a per-shard RNG substream: shard i receives
/// Rng(seed, stream, i). Serial and parallel runs draw identical numbers.
void ParallelForRng(std::size_t n, std::uint64_t seed, std::string_view stream,
                    const std::function<void(const Shard&, Rng&)>& body);

/// Maps fn over [0, n), committing results in item order: out[i] = fn(i).
/// fn must be callable concurrently on distinct i.
template <typename T, typename Fn>
std::vector<T> ParallelMap(std::size_t n, Fn&& fn) {
  std::vector<T> out(n);
  ParallelFor(n, [&](const Shard& shard) {
    for (std::size_t i = shard.begin; i < shard.end; ++i) out[i] = fn(i);
  });
  return out;
}

/// ParallelMap with per-shard RNG substreams: out[i] = fn(i, rng_of_shard(i)).
template <typename T, typename Fn>
std::vector<T> ParallelMapRng(std::size_t n, std::uint64_t seed,
                              std::string_view stream, Fn&& fn) {
  std::vector<T> out(n);
  ParallelForRng(n, seed, stream,
                 [&](const Shard& shard, Rng& rng) {
                   for (std::size_t i = shard.begin; i < shard.end; ++i) {
                     out[i] = fn(i, rng);
                   }
                 });
  return out;
}

/// Two-phase deterministic reduction: each shard folds its items
/// left-to-right (acc = reduce(acc, map(i)) starting from `identity`), then
/// the per-shard accumulators are folded in shard-index order. The grouping
/// is fixed by ParallelShardCount(n), so the result is identical for every
/// worker count (for non-associative ops it is *the sharded* order, not the
/// flat item order — callers that need flat order use ParallelMap + a serial
/// fold).
template <typename T, typename MapFn, typename ReduceFn>
T ParallelReduce(std::size_t n, T identity, MapFn&& map, ReduceFn&& reduce) {
  const std::size_t shards = ParallelShardCount(n);
  if (shards == 0) return identity;
  std::vector<T> partial(shards, identity);
  ParallelFor(n, [&](const Shard& shard) {
    T acc = identity;
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      acc = reduce(std::move(acc), map(i));
    }
    partial[shard.index] = std::move(acc);
  });
  T total = std::move(partial[0]);
  for (std::size_t s = 1; s < shards; ++s) {
    total = reduce(std::move(total), std::move(partial[s]));
  }
  return total;
}

}  // namespace myrtus::util
