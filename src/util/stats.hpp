// Online statistics used by the monitoring/observability building block and
// by the bench harness: running moments, reservoir-free percentile summaries
// (P² would be overkill; we keep bounded samples), and fixed-bucket
// histograms for latency distributions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace myrtus::util {

/// Welford running mean/variance with min/max tracking.
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Stores all samples (bounded use in benches/tests) and answers quantiles.
class Samples {
 public:
  void Add(double x) { xs_.push_back(x); sorted_ = false; }
  [[nodiscard]] std::size_t count() const { return xs_.size(); }
  [[nodiscard]] double mean() const;
  /// Quantile by linear interpolation; q in [0,1]. Returns 0 when empty.
  [[nodiscard]] double Quantile(double q) const;
  [[nodiscard]] double p50() const { return Quantile(0.50); }
  [[nodiscard]] double p95() const { return Quantile(0.95); }
  [[nodiscard]] double p99() const { return Quantile(0.99); }
  [[nodiscard]] double max() const { return Quantile(1.0); }
  void Clear() { xs_.clear(); sorted_ = false; }

 private:
  mutable std::vector<double> xs_;
  mutable bool sorted_ = false;
};

/// Log-scaled latency histogram (power-of-two buckets over nanoseconds or any
/// unit the caller chooses).
class Log2Histogram {
 public:
  void Add(double x);
  [[nodiscard]] std::uint64_t count() const { return total_; }
  /// Rendered rows "[lo, hi): count" for reports.
  [[nodiscard]] std::string ToString() const;
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const { return buckets_; }

 private:
  std::vector<std::uint64_t> buckets_ = std::vector<std::uint64_t>(64, 0);
  std::uint64_t total_ = 0;
};

}  // namespace myrtus::util
