#include "util/bytes.hpp"

namespace myrtus::util {
namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string ToHex(const std::uint8_t* data, std::size_t len) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xF]);
  }
  return out;
}

StatusOr<Bytes> FromHex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Status::InvalidArgument("hex string has odd length");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = HexNibble(hex[i]);
    const int lo = HexNibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Status::InvalidArgument("non-hex character in input");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

Bytes BytesOf(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string StringOf(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

bool ConstantTimeEqual(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace myrtus::util
