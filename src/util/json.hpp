// A small, dependency-free JSON document type. Used as the wire payload for
// HTTP/MQTT-style exchanges on the continuum (the paper's edge gateways
// exchange JSON packets, §III Network), as the stored representation in the
// knowledge base, and as the serialization of TOSCA models.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/status.hpp"

namespace myrtus::util {

/// Recursive JSON value. Object keys are kept sorted (std::map) so encoded
/// documents are canonical — important for hashing/signing deployment specs.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(std::int64_t i) : v_(i) {}
  Json(std::uint64_t i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned i) : v_(static_cast<std::int64_t>(i)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}
  Json(Array a) : v_(std::move(a)) {}
  Json(Object o) : v_(std::move(o)) {}

  static Json MakeArray() { return Json(Array{}); }
  static Json MakeObject() { return Json(Object{}); }

  [[nodiscard]] bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  [[nodiscard]] bool is_bool() const { return std::holds_alternative<bool>(v_); }
  [[nodiscard]] bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  [[nodiscard]] bool is_double() const { return std::holds_alternative<double>(v_); }
  [[nodiscard]] bool is_number() const { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const { return std::holds_alternative<std::string>(v_); }
  [[nodiscard]] bool is_array() const { return std::holds_alternative<Array>(v_); }
  [[nodiscard]] bool is_object() const { return std::holds_alternative<Object>(v_); }

  [[nodiscard]] bool as_bool(bool fallback = false) const;
  [[nodiscard]] std::int64_t as_int(std::int64_t fallback = 0) const;
  [[nodiscard]] double as_double(double fallback = 0.0) const;
  [[nodiscard]] const std::string& as_string() const;  // empty string fallback

  /// Array access; empty static array when not an array.
  [[nodiscard]] const Array& items() const;
  Array& mutable_items();

  /// Object access; empty static object when not an object.
  [[nodiscard]] const Object& fields() const;
  Object& mutable_fields();

  /// Object field lookup: returns null Json when absent or not an object.
  [[nodiscard]] const Json& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;
  /// Inserts/overwrites a field; converts this value into an object if needed.
  Json& Set(std::string key, Json value);
  /// Appends to an array; converts this value into an array if needed.
  Json& Append(Json value);

  /// Canonical compact encoding.
  [[nodiscard]] std::string Dump() const;
  /// Pretty-printed encoding with 2-space indentation.
  [[nodiscard]] std::string Pretty() const;

  /// Full JSON parser (RFC 8259 subset: no surrogate-pair decoding beyond
  /// pass-through \uXXXX escapes, which we re-emit verbatim).
  static StatusOr<Json> Parse(std::string_view text);

  friend bool operator==(const Json& a, const Json& b) { return a.v_ == b.v_; }

 private:
  void DumpTo(std::string& out, int indent, int depth) const;
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array,
               Object>
      v_;
};

}  // namespace myrtus::util
