#include "util/status.hpp"

#include <cstdio>
#include <cstdlib>

namespace myrtus::util {

void MustOk(const Status& s) {
  if (s.ok()) return;
  std::fprintf(stderr, "MustOk failed: %s\n", s.ToString().c_str());
  std::abort();
}

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnauthenticated: return "UNAUTHENTICATED";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDataLoss: return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace myrtus::util
