// Deterministic random number streams. Every stochastic component in the
// simulator owns its own named stream so experiments are reproducible and
// components can be re-seeded independently (a requirement for the
// failure-injection benches).
#pragma once

#include <cstdint>
#include <string_view>

namespace myrtus::util {

/// xoshiro256** with SplitMix64 seeding. Not cryptographic; simulation only.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) { Seed(seed); }
  /// Derives a stream from a parent seed and a component name, so two
  /// components never share a sequence even with identical numeric seeds.
  Rng(std::uint64_t seed, std::string_view stream_name);
  /// Derives substream `index` of the named stream. Substreams are the unit
  /// of parallel determinism: util::ParallelForRng hands shard `i` substream
  /// `i`, so the numbers a shard draws depend only on (seed, name, index) —
  /// never on how many workers executed the region or in what order.
  Rng(std::uint64_t seed, std::string_view stream_name, std::uint64_t index);

  void Seed(std::uint64_t seed);

  /// Uniform 64-bit value.
  std::uint64_t NextU64();
  /// Uniform in [0, bound) without modulo bias (Lemire reduction).
  std::uint64_t NextBounded(std::uint64_t bound);
  /// Uniform double in [0, 1).
  double NextDouble();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Standard normal via Box-Muller (cached pair).
  double NextGaussian();
  /// Exponential with the given rate (mean 1/rate).
  double NextExponential(double rate);
  /// Poisson-distributed count (Knuth for small means, normal approx above 64).
  std::uint64_t NextPoisson(double mean);
  /// Bernoulli trial.
  bool NextBool(double p_true = 0.5);

  /// UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return NextU64(); }

 private:
  std::uint64_t s_[4] = {};
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace myrtus::util
