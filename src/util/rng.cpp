#include "util/rng.hpp"

#include <cmath>

#include "util/bytes.hpp"

namespace myrtus::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed, std::string_view stream_name) {
  Seed(seed ^ Fnv1a64(stream_name));
}

Rng::Rng(std::uint64_t seed, std::string_view stream_name, std::uint64_t index) {
  // One extra SplitMix64 round decorrelates adjacent substream indices before
  // Seed() runs its own chain, so substreams k and k+1 share no structure.
  std::uint64_t mix = (seed ^ Fnv1a64(stream_name)) + index;
  Seed(SplitMix64(mix));
}

void Rng::Seed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
  have_cached_gaussian_ = false;
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  const std::uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(NextU64()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Rng::NextGaussian() {
  if (have_cached_gaussian_) {
    have_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  have_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::NextExponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

std::uint64_t Rng::NextPoisson(double mean) {
  if (mean <= 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double v = mean + std::sqrt(mean) * NextGaussian() + 0.5;
    return v <= 0.0 ? 0 : static_cast<std::uint64_t>(v);
  }
  const double limit = std::exp(-mean);
  double product = NextDouble();
  std::uint64_t count = 0;
  while (product > limit) {
    product *= NextDouble();
    ++count;
  }
  return count;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

}  // namespace myrtus::util
