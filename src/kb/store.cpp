#include "kb/store.hpp"

#include <algorithm>

namespace myrtus::kb {

std::int64_t Store::Put(const std::string& key, util::Json value,
                        std::int64_t lease_id) {
  ++revision_;
  KeyValue& kv = data_[key];
  if (kv.create_revision == 0) {
    kv.key = key;
    kv.create_revision = revision_;
  }
  kv.value = std::move(value);
  kv.mod_revision = revision_;
  kv.version += 1;
  kv.lease_id = lease_id;
  Notify(WatchEvent{WatchEvent::Type::kPut, kv});
  return revision_;
}

std::optional<std::int64_t> Store::Delete(const std::string& key) {
  const auto it = data_.find(key);
  if (it == data_.end()) return std::nullopt;
  ++revision_;
  KeyValue last = it->second;
  last.mod_revision = revision_;
  data_.erase(it);
  Notify(WatchEvent{WatchEvent::Type::kDelete, std::move(last)});
  return revision_;
}

util::StatusOr<KeyValue> Store::Get(const std::string& key) const {
  const auto it = data_.find(key);
  if (it == data_.end()) return util::Status::NotFound("key: " + key);
  return it->second;
}

std::vector<KeyValue> Store::Range(const std::string& prefix) const {
  std::vector<KeyValue> out;
  for (auto it = data_.lower_bound(prefix);
       it != data_.end() && it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    out.push_back(it->second);
  }
  return out;
}

std::int64_t Store::Watch(const std::string& prefix, WatchCallback cb) {
  const std::int64_t id = next_watch_id_++;
  watchers_.push_back(Watcher{id, prefix, std::move(cb)});
  return id;
}

void Store::CancelWatch(std::int64_t watch_id) {
  std::erase_if(watchers_, [&](const Watcher& w) { return w.id == watch_id; });
}

void Store::Notify(const WatchEvent& event) {
  // Copy the watcher list: a callback may add/cancel watches re-entrantly.
  const std::vector<Watcher> snapshot = watchers_;
  for (const Watcher& w : snapshot) {
    if (event.kv.key.compare(0, w.prefix.size(), w.prefix) == 0) {
      w.cb(event);
    }
  }
}

std::int64_t Store::GrantLease(std::int64_t expiry_ns) {
  const std::int64_t id = next_lease_id_++;
  leases_[id] = expiry_ns;
  return id;
}

bool Store::RenewLease(std::int64_t lease_id, std::int64_t new_expiry_ns) {
  const auto it = leases_.find(lease_id);
  if (it == leases_.end()) return false;
  it->second = new_expiry_ns;
  return true;
}

bool Store::RevokeLease(std::int64_t lease_id) {
  if (leases_.erase(lease_id) == 0) return false;
  for (auto& [key, kv] : data_) {
    if (kv.lease_id == lease_id) kv.lease_id = 0;
  }
  return true;
}

std::size_t Store::ExpireLeases(std::int64_t now_ns) {
  std::vector<std::int64_t> expired;
  for (const auto& [id, expiry] : leases_) {
    if (expiry <= now_ns) expired.push_back(id);
  }
  std::size_t removed = 0;
  for (const std::int64_t id : expired) {
    leases_.erase(id);
    std::vector<std::string> doomed;
    for (const auto& [key, kv] : data_) {
      if (kv.lease_id == id) doomed.push_back(key);
    }
    for (const std::string& key : doomed) {
      Delete(key);
      ++removed;
    }
  }
  return removed;
}

}  // namespace myrtus::kb
