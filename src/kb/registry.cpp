#include "kb/registry.hpp"

namespace myrtus::kb {

util::Json NodeRecord::ToJson() const {
  return util::Json::MakeObject()
      .Set("node_id", node_id)
      .Set("layer", layer)
      .Set("kind", kind)
      .Set("ready", ready)
      .Set("cpu_capacity", cpu_capacity)
      .Set("cpu_allocated", cpu_allocated)
      .Set("mem_capacity_mb", mem_capacity_mb)
      .Set("mem_allocated_mb", mem_allocated_mb)
      .Set("security_level", security_level)
      .Set("has_accelerator", has_accelerator)
      .Set("energy_mj", energy_mj)
      .Set("trust_score", trust_score);
}

util::StatusOr<NodeRecord> NodeRecord::FromJson(const util::Json& j) {
  if (!j.is_object() || !j.has("node_id")) {
    return util::Status::InvalidArgument("not a node record");
  }
  NodeRecord r;
  r.node_id = j.at("node_id").as_string();
  r.layer = j.at("layer").as_string();
  r.kind = j.at("kind").as_string();
  r.ready = j.at("ready").as_bool(true);
  r.cpu_capacity = j.at("cpu_capacity").as_double();
  r.cpu_allocated = j.at("cpu_allocated").as_double();
  r.mem_capacity_mb = static_cast<std::uint64_t>(j.at("mem_capacity_mb").as_int());
  r.mem_allocated_mb = static_cast<std::uint64_t>(j.at("mem_allocated_mb").as_int());
  r.security_level = static_cast<int>(j.at("security_level").as_int());
  r.has_accelerator = j.at("has_accelerator").as_bool();
  // "energy_mw" is the legacy key for the same (mJ) quantity: records
  // written before the rename carried millijoules under the wrong name.
  r.energy_mj = j.has("energy_mj") ? j.at("energy_mj").as_double()
                                   : j.at("energy_mw").as_double();
  r.trust_score = j.at("trust_score").as_double(1.0);
  return r;
}

std::string ResourceRegistry::NodeKey(const std::string& node_id) {
  return "/registry/nodes/" + node_id;
}

std::string ResourceRegistry::WorkloadKey(const std::string& workload_id) {
  return "/registry/workloads/" + workload_id;
}

std::string ResourceRegistry::TelemetryKey(const std::string& node_id,
                                           const std::string& metric) {
  return "/telemetry/" + node_id + "/" + metric;
}

std::string ResourceRegistry::SloKey(const std::string& scope,
                                     const std::string& name) {
  return "/slo/" + scope + "/" + name;
}

void ResourceRegistry::PutSloState(const std::string& scope,
                                   const std::string& name,
                                   util::Json record) {
  store_.Put(SloKey(scope, name), std::move(record));
}

util::StatusOr<util::Json> ResourceRegistry::GetSloState(
    const std::string& scope, const std::string& name) const {
  auto kv = store_.Get(SloKey(scope, name));
  if (!kv.ok()) return kv.status();
  return kv->value;
}

void ResourceRegistry::PutNode(const NodeRecord& record) {
  store_.Put(NodeKey(record.node_id), record.ToJson());
}

util::StatusOr<NodeRecord> ResourceRegistry::GetNode(
    const std::string& node_id) const {
  auto kv = store_.Get(NodeKey(node_id));
  if (!kv.ok()) return kv.status();
  return NodeRecord::FromJson(kv->value);
}

std::vector<NodeRecord> ResourceRegistry::ListNodes(
    const std::string& layer) const {
  std::vector<NodeRecord> out;
  for (const KeyValue& kv : store_.Range("/registry/nodes/")) {
    auto record = NodeRecord::FromJson(kv.value);
    if (record.ok() && (layer.empty() || record->layer == layer)) {
      out.push_back(std::move(record).value());
    }
  }
  return out;
}

void ResourceRegistry::RemoveNode(const std::string& node_id) {
  store_.Delete(NodeKey(node_id));
}

void ResourceRegistry::PutWorkload(const std::string& workload_id,
                                   util::Json record) {
  store_.Put(WorkloadKey(workload_id), std::move(record));
}

util::StatusOr<util::Json> ResourceRegistry::GetWorkload(
    const std::string& workload_id) const {
  auto kv = store_.Get(WorkloadKey(workload_id));
  if (!kv.ok()) return kv.status();
  return kv->value;
}

std::vector<std::pair<std::string, util::Json>> ResourceRegistry::ListWorkloads()
    const {
  std::vector<std::pair<std::string, util::Json>> out;
  const std::string prefix = "/registry/workloads/";
  for (const KeyValue& kv : store_.Range(prefix)) {
    out.emplace_back(kv.key.substr(prefix.size()), kv.value);
  }
  return out;
}

void ResourceRegistry::AppendTelemetry(const std::string& node_id,
                                       const std::string& metric,
                                       TelemetrySample sample,
                                       std::size_t max_samples) {
  const std::string key = TelemetryKey(node_id, metric);
  util::Json series = util::Json::MakeArray();
  if (auto existing = store_.Get(key); existing.ok()) {
    series = existing->value;
  }
  series.Append(util::Json::MakeObject()
                    .Set("t", sample.at_ns)
                    .Set("v", sample.value));
  auto& items = series.mutable_items();
  if (items.size() > max_samples) {
    items.erase(items.begin(),
                items.begin() + static_cast<long>(items.size() - max_samples));
  }
  store_.Put(key, std::move(series));
}

std::vector<TelemetrySample> ResourceRegistry::GetTelemetry(
    const std::string& node_id, const std::string& metric) const {
  std::vector<TelemetrySample> out;
  auto kv = store_.Get(TelemetryKey(node_id, metric));
  if (!kv.ok()) return out;
  for (const util::Json& item : kv->value.items()) {
    out.push_back(TelemetrySample{item.at("t").as_int(), item.at("v").as_double()});
  }
  return out;
}

double ResourceRegistry::RecentMean(const std::string& node_id,
                                    const std::string& metric,
                                    std::size_t window) const {
  const std::vector<TelemetrySample> samples = GetTelemetry(node_id, metric);
  if (samples.empty()) return 0.0;
  const std::size_t n = std::min(window, samples.size());
  double sum = 0.0;
  for (std::size_t i = samples.size() - n; i < samples.size(); ++i) {
    sum += samples[i].value;
  }
  return sum / static_cast<double>(n);
}

}  // namespace myrtus::kb
