// Resource Registry / Status — the KB schema the paper names as the
// observability backbone: "a snapshot of the components availability and
// their status" plus historical telemetry (§III Monitoring, §VI KB activity).
// The registry is a typed veneer over the MVCC store under reserved key
// prefixes:
//   /registry/nodes/<node-id>        -> NodeRecord
//   /registry/workloads/<wl-id>      -> workload placement record
//   /telemetry/<node-id>/<metric>    -> ring of recent samples
//   /slo/<scope>/<objective>         -> burn-rate alert state (self-monitoring)
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "kb/store.hpp"
#include "util/json.hpp"
#include "util/status.hpp"

namespace myrtus::kb {

/// Availability/status snapshot of one continuum component.
struct NodeRecord {
  std::string node_id{};
  std::string layer{};        // "edge" | "fog" | "cloud"
  std::string kind{};         // "hmpsoc", "riscv", "gateway", "fmdc", "dc", ...
  bool ready = true;
  double cpu_capacity = 0.0;      // abstract CPU units
  double cpu_allocated = 0.0;
  std::uint64_t mem_capacity_mb = 0;
  std::uint64_t mem_allocated_mb = 0;
  int security_level = 0;         // 0=low 1=medium 2=high (Table II)
  bool has_accelerator = false;
  double energy_mj = 0.0;         // cumulative energy consumed (millijoules)
  double trust_score = 1.0;       // runtime trust indicator (§III)

  [[nodiscard]] util::Json ToJson() const;
  static util::StatusOr<NodeRecord> FromJson(const util::Json& j);
};

/// Telemetry sample appended by monitors.
struct TelemetrySample {
  std::int64_t at_ns = 0;
  double value = 0.0;
};

/// Registry facade over a Store (typically a local KB replica).
class ResourceRegistry {
 public:
  explicit ResourceRegistry(Store& store) : store_(store) {}

  static std::string NodeKey(const std::string& node_id);
  static std::string WorkloadKey(const std::string& workload_id);
  static std::string TelemetryKey(const std::string& node_id,
                                  const std::string& metric);
  static std::string SloKey(const std::string& scope, const std::string& name);

  /// Upserts a node record.
  void PutNode(const NodeRecord& record);
  [[nodiscard]] util::StatusOr<NodeRecord> GetNode(const std::string& node_id) const;
  /// All registered nodes (optionally restricted to one layer).
  [[nodiscard]] std::vector<NodeRecord> ListNodes(const std::string& layer = "") const;
  void RemoveNode(const std::string& node_id);

  /// Records a workload placement (workload -> node binding + metadata).
  void PutWorkload(const std::string& workload_id, util::Json record);
  [[nodiscard]] util::StatusOr<util::Json> GetWorkload(const std::string& workload_id) const;
  [[nodiscard]] std::vector<std::pair<std::string, util::Json>> ListWorkloads() const;

  /// Appends a telemetry sample, keeping at most `max_samples` per series.
  void AppendTelemetry(const std::string& node_id, const std::string& metric,
                       TelemetrySample sample, std::size_t max_samples = 256);
  [[nodiscard]] std::vector<TelemetrySample> GetTelemetry(
      const std::string& node_id, const std::string& metric) const;
  /// Mean of the most recent `window` samples (0 when empty).
  [[nodiscard]] double RecentMean(const std::string& node_id,
                                  const std::string& metric,
                                  std::size_t window = 16) const;

  /// SLO burn-rate alert state published by the self-monitoring loop
  /// (`scope` = the evaluating component, e.g. the MIRTO agent host). This is
  /// the MAPE-K knowledge feedback: Analyze writes it, anything on the KB —
  /// peers, dashboards, the next Analyze pass — can read it.
  void PutSloState(const std::string& scope, const std::string& name,
                   util::Json record);
  [[nodiscard]] util::StatusOr<util::Json> GetSloState(
      const std::string& scope, const std::string& name) const;

 private:
  Store& store_;
};

}  // namespace myrtus::kb
