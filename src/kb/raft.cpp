#include "kb/raft.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace myrtus::kb {
namespace {

util::Json EntryToJson(const LogEntry& e) {
  return util::Json::MakeObject().Set("term", e.term).Set("cmd", e.command);
}

LogEntry EntryFromJson(const util::Json& j) {
  return LogEntry{j.at("term").as_int(), j.at("cmd")};
}

}  // namespace

std::string_view RaftRoleName(RaftRole role) {
  switch (role) {
    case RaftRole::kFollower: return "follower";
    case RaftRole::kCandidate: return "candidate";
    case RaftRole::kLeader: return "leader";
  }
  return "?";
}

RaftNode::RaftNode(net::Network& network, net::HostId self,
                   std::vector<net::HostId> peers, std::uint64_t seed,
                   ApplyFn apply, RaftConfig config)
    : network_(network),
      self_(std::move(self)),
      rng_(seed, self_),
      apply_(std::move(apply)),
      config_(config) {
  for (net::HostId& p : peers) {
    if (p != self_) peers_.push_back(std::move(p));
  }
  log_.emplace_back();  // sentinel at index 0 (term 0, empty command)
}

void RaftNode::Start() {
  network_.RegisterRpc(self_, "raft.request_vote",
                       [this](const net::HostId&, const util::Json& req) {
                         if (crashed_) {
                           return util::StatusOr<util::Json>(
                               util::Status::Unavailable("crashed"));
                         }
                         return OnRequestVote(req);
                       });
  network_.RegisterRpc(self_, "raft.append_entries",
                       [this](const net::HostId&, const util::Json& req) {
                         if (crashed_) {
                           return util::StatusOr<util::Json>(
                               util::Status::Unavailable("crashed"));
                         }
                         return OnAppendEntries(req);
                       });
  ArmElectionTimer();
}

void RaftNode::Crash() {
  crashed_ = true;
  role_ = RaftRole::kFollower;
  known_leader_.clear();
  DisarmTimers();
  FailPendingProposals(util::Status::Unavailable("node crashed"));
  next_index_.clear();
  match_index_.clear();
  append_in_flight_.clear();
}

void RaftNode::Recover() {
  if (!crashed_) return;
  crashed_ = false;
  role_ = RaftRole::kFollower;
  // commit_index/last_applied are volatile in Raft; they are rebuilt from the
  // leader's commit index. The state machine restart is modeled by replaying
  // from scratch being unnecessary here: apply_ was driven only by committed
  // entries which are stable, so we keep last_applied_.
  ArmElectionTimer();
}

void RaftNode::DisarmTimers() {
  network_.engine().Cancel(election_timer_);
  network_.engine().Cancel(heartbeat_timer_);
  election_timer_ = {};
  heartbeat_timer_ = {};
  ++timer_epoch_;
}

void RaftNode::ArmElectionTimer() {
  network_.engine().Cancel(election_timer_);
  const std::int64_t span =
      config_.election_timeout_max.ns - config_.election_timeout_min.ns;
  const sim::SimTime timeout =
      config_.election_timeout_min +
      sim::SimTime::Nanos(static_cast<std::int64_t>(
          rng_.NextDouble() * static_cast<double>(span)));
  const std::uint64_t epoch = timer_epoch_;
  election_timer_ = network_.engine().ScheduleAfter(timeout, [this, epoch] {
    if (crashed_ || epoch != timer_epoch_) return;
    if (role_ != RaftRole::kLeader) StartElection();
  });
}

void RaftNode::BecomeFollower(std::int64_t term) {
  if (term > current_term_) {
    current_term_ = term;
    voted_for_.clear();
  }
  if (role_ == RaftRole::kLeader) {
    network_.engine().Cancel(heartbeat_timer_);
    heartbeat_timer_ = {};
    FailPendingProposals(util::Status::Aborted("lost leadership"));
    if (telemetry::Enabled()) {
      const std::int64_t now_ns = network_.engine().Now().ns;
      auto& recorder = telemetry::Global().recorder;
      recorder.RecordEvent("raft.leadership_lost", self_, now_ns);
      // Leadership loss is a canonical "what just happened?" moment: dump the
      // flight-recorder ring when a dump sink is armed.
      // LINT: discard(the dump is advisory; the event itself is in the ring)
      (void)recorder.Trigger("raft.leadership_lost:" + self_, now_ns);
    }
  }
  role_ = RaftRole::kFollower;
  ArmElectionTimer();
}

void RaftNode::StartElection() {
  role_ = RaftRole::kCandidate;
  ++current_term_;
  voted_for_ = self_;
  votes_received_ = 1;  // own vote
  election_term_ = current_term_;
  known_leader_.clear();
  ArmElectionTimer();  // retry if the election stalls

  const std::size_t majority = (peers_.size() + 1) / 2 + 1;
  if (votes_received_ >= majority) {  // single-node cluster wins instantly
    BecomeLeader();
    return;
  }
  util::Json req = util::Json::MakeObject()
                       .Set("term", current_term_)
                       .Set("candidate", self_)
                       .Set("last_log_index", LastLogIndex())
                       .Set("last_log_term", LastLogTerm());
  net::RetryPolicy vote_policy = config_.rpc_retry;
  vote_policy.attempt_timeout = config_.election_timeout_min;
  vote_policy.overall_deadline = config_.election_timeout_min * 2;
  for (const net::HostId& peer : peers_) {
    network_.CallWithRetry(
        self_, peer, "raft.request_vote", req,
        [this, majority](util::StatusOr<util::Json> reply) {
          if (crashed_ || !reply.ok()) return;
          const std::int64_t term = reply->at("term").as_int();
          if (term > current_term_) {
            BecomeFollower(term);
            return;
          }
          if (role_ != RaftRole::kCandidate ||
              current_term_ != election_term_) {
            return;  // stale reply from a previous election
          }
          if (reply->at("granted").as_bool() &&
              ++votes_received_ >= majority) {
            BecomeLeader();
          }
        },
        vote_policy);
  }
}

void RaftNode::BecomeLeader() {
  role_ = RaftRole::kLeader;
  known_leader_ = self_;
  if (telemetry::Enabled()) {
    telemetry::Global().metrics.Add("myrtus_kb_raft_elections_total", 1.0,
                                    {{"leader", self_}});
  }
  network_.engine().Cancel(election_timer_);
  election_timer_ = {};
  for (const net::HostId& peer : peers_) {
    next_index_[peer] = LastLogIndex() + 1;
    match_index_[peer] = 0;
    append_in_flight_[peer] = false;
  }
  BroadcastHeartbeat();
  const std::uint64_t epoch = timer_epoch_;
  heartbeat_timer_ = network_.engine().SchedulePeriodic(
      config_.heartbeat_interval, [this, epoch] {
        if (crashed_ || epoch != timer_epoch_ || role_ != RaftRole::kLeader) {
          return;
        }
        BroadcastHeartbeat();
      });
}

void RaftNode::BroadcastHeartbeat() {
  for (const net::HostId& peer : peers_) SendAppendEntries(peer);
}

void RaftNode::SendAppendEntries(const net::HostId& peer) {
  if (append_in_flight_[peer]) return;  // serialize per peer
  append_in_flight_[peer] = true;

  const std::int64_t prev_index = next_index_[peer] - 1;
  util::Json entries = util::Json::MakeArray();
  std::size_t count = 0;
  for (std::int64_t i = next_index_[peer];
       i <= LastLogIndex() && count < config_.max_entries_per_append;
       ++i, ++count) {
    entries.Append(EntryToJson(log_[static_cast<std::size_t>(i)]));
  }
  util::Json req =
      util::Json::MakeObject()
          .Set("term", current_term_)
          .Set("leader", self_)
          .Set("prev_log_index", prev_index)
          .Set("prev_log_term",
               log_[static_cast<std::size_t>(prev_index)].term)
          .Set("entries", std::move(entries))
          .Set("leader_commit", commit_index_);
  const std::int64_t sent_up_to =
      prev_index + static_cast<std::int64_t>(count);
  const std::int64_t term_at_send = current_term_;

  // One heartbeat interval per attempt is ~10x the mesh RTT and keeps the
  // whole chain shorter than the old single-attempt timeout (hb*4), so a
  // lost append blocks this peer's pipeline only briefly.
  net::RetryPolicy append_policy = config_.rpc_retry;
  append_policy.attempt_timeout = config_.heartbeat_interval;
  append_policy.overall_deadline = config_.heartbeat_interval * 4;
  network_.CallWithRetry(
      self_, peer, "raft.append_entries", std::move(req),
      [this, peer, sent_up_to, term_at_send](util::StatusOr<util::Json> reply) {
        append_in_flight_[peer] = false;
        if (crashed_ || role_ != RaftRole::kLeader ||
            current_term_ != term_at_send) {
          return;
        }
        if (!reply.ok()) {
          // Whole retry chain failed. If entries arrived while it was in
          // flight, relaunch immediately with a fresh batch — a retried
          // request replays its original (stale) payload, so a concurrent
          // proposal would otherwise idle until the next heartbeat. With
          // nothing new, let the heartbeat re-drive (avoids hot-looping on
          // a dead peer).
          if (LastLogIndex() > sent_up_to) SendAppendEntries(peer);
          return;
        }
        const std::int64_t term = reply->at("term").as_int();
        if (term > current_term_) {
          BecomeFollower(term);
          return;
        }
        if (reply->at("success").as_bool()) {
          match_index_[peer] = std::max(match_index_[peer], sent_up_to);
          next_index_[peer] = match_index_[peer] + 1;
          AdvanceCommitIndex();
          if (next_index_[peer] <= LastLogIndex()) SendAppendEntries(peer);
        } else {
          // Back off; the conflict hint accelerates convergence.
          const std::int64_t hint = reply->at("conflict_index").as_int(1);
          next_index_[peer] = std::max<std::int64_t>(1, std::min(hint, next_index_[peer] - 1));
          SendAppendEntries(peer);
        }
      },
      append_policy);
}

util::StatusOr<util::Json> RaftNode::OnRequestVote(const util::Json& req) {
  const std::int64_t term = req.at("term").as_int();
  const std::string candidate = req.at("candidate").as_string();
  if (term > current_term_) {
    // Step down WITHOUT re-arming the election timer (BecomeFollower would):
    // a candidacy we end up not voting for must not keep deferring our own
    // election, or a partitioned node with a stale log can suppress the
    // cluster's liveness indefinitely. The timer is reset below only when
    // the vote is granted. Exception: a deposed leader has no election timer
    // at all, so it must arm one here or it would never stand again.
    const bool was_leader = role_ == RaftRole::kLeader;
    current_term_ = term;
    voted_for_.clear();
    if (was_leader) {
      network_.engine().Cancel(heartbeat_timer_);
      heartbeat_timer_ = {};
      FailPendingProposals(util::Status::Aborted("lost leadership"));
    }
    role_ = RaftRole::kFollower;
    if (was_leader) ArmElectionTimer();
  }

  bool granted = false;
  if (term == current_term_ &&
      (voted_for_.empty() || voted_for_ == candidate)) {
    // Election restriction (§5.4.1): candidate's log must be at least as
    // up-to-date as ours.
    const std::int64_t c_last_term = req.at("last_log_term").as_int();
    const std::int64_t c_last_index = req.at("last_log_index").as_int();
    const bool up_to_date =
        c_last_term > LastLogTerm() ||
        (c_last_term == LastLogTerm() && c_last_index >= LastLogIndex());
    if (up_to_date) {
      granted = true;
      voted_for_ = candidate;
      ArmElectionTimer();  // granting a vote resets the timer
    }
  }
  return util::Json::MakeObject()
      .Set("term", current_term_)
      .Set("granted", granted);
}

util::StatusOr<util::Json> RaftNode::OnAppendEntries(const util::Json& req) {
  const std::int64_t term = req.at("term").as_int();
  util::Json reply = util::Json::MakeObject();
  if (term < current_term_) {
    return reply.Set("term", current_term_).Set("success", false)
        .Set("conflict_index", 1);
  }
  if (term > current_term_ || role_ != RaftRole::kFollower) {
    BecomeFollower(term);
  } else {
    ArmElectionTimer();
  }
  known_leader_ = req.at("leader").as_string();

  const std::int64_t prev_index = req.at("prev_log_index").as_int();
  const std::int64_t prev_term = req.at("prev_log_term").as_int();
  if (prev_index > LastLogIndex() ||
      log_[static_cast<std::size_t>(prev_index)].term != prev_term) {
    // Conflict: tell the leader the earliest plausible retry point.
    std::int64_t conflict = std::min(prev_index, LastLogIndex() + 1);
    if (conflict > 1 && prev_index <= LastLogIndex()) {
      const std::int64_t bad_term =
          log_[static_cast<std::size_t>(prev_index)].term;
      while (conflict > 1 &&
             log_[static_cast<std::size_t>(conflict - 1)].term == bad_term) {
        --conflict;
      }
    }
    return reply.Set("term", current_term_)
        .Set("success", false)
        .Set("conflict_index", conflict);
  }

  // Append / overwrite entries.
  std::int64_t index = prev_index;
  for (const util::Json& ej : req.at("entries").items()) {
    ++index;
    LogEntry entry = EntryFromJson(ej);
    if (index <= LastLogIndex()) {
      if (log_[static_cast<std::size_t>(index)].term != entry.term) {
        log_.resize(static_cast<std::size_t>(index));  // truncate conflict
        log_.push_back(std::move(entry));
      }
      // else: duplicate of an existing entry — keep it.
    } else {
      log_.push_back(std::move(entry));
    }
  }

  if (telemetry::Enabled() && index > prev_index) {
    telemetry::Global().metrics.Add(
        "myrtus_kb_raft_appends_total", static_cast<double>(index - prev_index),
        {{"node", self_}});
  }

  const std::int64_t leader_commit = req.at("leader_commit").as_int();
  if (leader_commit > commit_index_) {
    commit_index_ = std::min(leader_commit, LastLogIndex());
    ApplyCommitted();
  }
  return reply.Set("term", current_term_).Set("success", true);
}

void RaftNode::AdvanceCommitIndex() {
  // Find the highest N > commitIndex replicated on a majority with
  // log[N].term == currentTerm (§5.4.2 commit rule).
  for (std::int64_t n = LastLogIndex(); n > commit_index_; --n) {
    if (log_[static_cast<std::size_t>(n)].term != current_term_) break;
    std::size_t replicas = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      if (match >= n) ++replicas;
    }
    if (replicas >= (peers_.size() + 1) / 2 + 1) {
      commit_index_ = n;
      ApplyCommitted();
      break;
    }
  }
}

void RaftNode::ApplyCommitted() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const LogEntry& entry = log_[static_cast<std::size_t>(last_applied_)];
    if (telemetry::Enabled()) {
      telemetry::Global().metrics.Add("myrtus_kb_raft_commits_total", 1.0,
                                      {{"node", self_}});
    }
    if (apply_ && !entry.command.is_null()) apply_(entry.command);
    const auto it = pending_.find(last_applied_);
    if (it != pending_.end()) {
      ProposeCallback cb = std::move(it->second);
      pending_.erase(it);
      cb(last_applied_);
    }
  }
}

void RaftNode::FailPendingProposals(const util::Status& status) {
  auto pending = std::move(pending_);
  pending_.clear();
  for (auto& [index, cb] : pending) cb(status);
}

void RaftNode::Propose(util::Json command, ProposeCallback done) {
  if (telemetry::Enabled()) {
    // One span per proposal, covering replication until commit (or failure);
    // latency lands in the commit-latency histogram either way.
    auto& tel = telemetry::Global();
    const telemetry::SpanContext span = tel.tracer.StartSpan("raft.propose", "kb");
    tel.tracer.SetAttribute(span, "node", self_);
    const std::int64_t started_ns = tel.tracer.NowNs();
    done = [done = std::move(done), span,
            started_ns](util::StatusOr<std::int64_t> result) {
      auto& done_tel = telemetry::Global();
      done_tel.tracer.SetAttribute(
          span, "status",
          std::string(util::StatusCodeName(result.status().code())));
      done_tel.tracer.EndSpan(span);
      done_tel.metrics.Observe(
          "myrtus_kb_raft_commit_latency_ms",
          static_cast<double>(done_tel.tracer.NowNs() - started_ns) * 1e-6);
      done(std::move(result));
    };
  }
  if (crashed_) {
    done(util::Status::Unavailable("node crashed"));
    return;
  }
  if (role_ != RaftRole::kLeader) {
    done(util::Status::FailedPrecondition(
        "not leader; try " + (known_leader_.empty() ? std::string("unknown")
                                                    : known_leader_)));
    return;
  }
  log_.push_back(LogEntry{current_term_, std::move(command)});
  pending_[LastLogIndex()] = std::move(done);
  // Single-node cluster commits immediately; otherwise replicate now.
  if (peers_.empty()) {
    AdvanceCommitIndex();
  } else {
    BroadcastHeartbeat();
  }
}

}  // namespace myrtus::kb
