#include "kb/heartbeat.hpp"

namespace myrtus::kb {

HeartbeatService::HeartbeatService(sim::Engine& engine, Store& store,
                                   sim::SimTime ttl)
    : engine_(engine), store_(store), ttl_(ttl) {}

HeartbeatService::~HeartbeatService() {
  StopSweeper();
  for (auto& [id, member] : members_) {
    engine_.Cancel(member.keepalive);
  }
}

void HeartbeatService::Register(const NodeRecord& record) {
  const std::string& id = record.node_id;
  const auto existing = members_.find(id);
  if (existing != members_.end()) {
    engine_.Cancel(existing->second.keepalive);
    // Revoke the superseded lease, or it lingers in the store until its TTL
    // runs out and the sweeper deletes the *new* registration's key (the key
    // is still attached to it until the Put below) — a phantom expiry.
    store_.RevokeLease(existing->second.lease_id);
    members_.erase(existing);
  }
  Member member;
  member.lease_id = store_.GrantLease(engine_.Now().ns + ttl_.ns);
  store_.Put(ResourceRegistry::NodeKey(id), record.ToJson(), member.lease_id);
  // Component-side keepalive at ttl/3 (etcd's default cadence).
  member.keepalive = engine_.SchedulePeriodic(
      sim::SimTime::Nanos(ttl_.ns / 3), [this, id] { Renew(id); });
  members_[id] = member;
}

void HeartbeatService::Renew(const std::string& node_id) {
  const auto it = members_.find(node_id);
  if (it == members_.end() || !it->second.beating) return;
  store_.RenewLease(it->second.lease_id, engine_.Now().ns + ttl_.ns);
}

void HeartbeatService::StopBeating(const std::string& node_id) {
  const auto it = members_.find(node_id);
  if (it == members_.end()) return;
  it->second.beating = false;
  engine_.Cancel(it->second.keepalive);
  it->second.keepalive = {};
}

bool HeartbeatService::IsBeating(const std::string& node_id) const {
  const auto it = members_.find(node_id);
  return it != members_.end() && it->second.beating;
}

void HeartbeatService::StartSweeper() {
  StopSweeper();
  sweeper_ = engine_.SchedulePeriodic(
      sim::SimTime::Nanos(std::max<std::int64_t>(1, ttl_.ns / 2)), [this] {
        expirations_ += store_.ExpireLeases(engine_.Now().ns);
      });
}

void HeartbeatService::StopSweeper() {
  engine_.Cancel(sweeper_);
  sweeper_ = {};
}

}  // namespace myrtus::kb
