#include "kb/cluster.hpp"

#include <utility>

namespace myrtus::kb {
namespace {

/// Applies a committed KB command to a replica's store.
void ApplyCommand(Store& store, const util::Json& cmd) {
  const std::string op = cmd.at("op").as_string();
  if (op == "put") {
    store.Put(cmd.at("key").as_string(), cmd.at("value"),
              cmd.at("lease").as_int(0));
  } else if (op == "del") {
    store.Delete(cmd.at("key").as_string());
  } else if (op == "expire") {
    store.ExpireLeases(cmd.at("now_ns").as_int());
  }
}

/// Transport policy for client→replica RPCs. A lost packet costs one short
/// attempt timeout instead of the 5 s plain-Call default; leader discovery
/// and election waits stay in ProposeWithRetry's outer loop, which sees only
/// application errors (wrong leader, no leader) untouched by this layer.
net::RetryPolicy ClientRetryPolicy() {
  net::RetryPolicy p;
  p.max_attempts = 3;
  p.initial_backoff = sim::SimTime::Millis(25);
  p.attempt_timeout = sim::SimTime::Millis(300);
  p.overall_deadline = sim::SimTime::Seconds(2);
  p.use_circuit_breaker = false;  // replicas are essential destinations
  return p;
}

}  // namespace

KbCluster::KbCluster(net::Network& network,
                     std::vector<net::HostId> replica_hosts, std::uint64_t seed,
                     RaftConfig config)
    : network_(network), hosts_(std::move(replica_hosts)) {
  replicas_.reserve(hosts_.size());
  for (const net::HostId& host : hosts_) {
    Replica r;
    r.store = std::make_unique<Store>();
    Store* store = r.store.get();
    r.raft = std::make_unique<RaftNode>(
        network_, host, hosts_, seed,
        [store](const util::Json& cmd) { ApplyCommand(*store, cmd); }, config);
    replicas_.push_back(std::move(r));
  }

  // Client-facing RPC endpoints on every replica.
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    RaftNode* raft = replicas_[i].raft.get();
    Store* store = replicas_[i].store.get();
    network_.RegisterAsyncRpc(
        hosts_[i], "kb.propose",
        [raft](const net::HostId&, const util::Json& req,
               net::Network::RpcResponder respond) {
          raft->Propose(req, [respond = std::move(respond)](
                                 util::StatusOr<std::int64_t> result) {
            if (result.ok()) {
              respond(util::Json::MakeObject().Set("index", *result));
            } else {
              respond(result.status());
            }
          });
        });
    network_.RegisterRpc(
        hosts_[i], "kb.get",
        [raft, store](const net::HostId&, const util::Json& req)
            -> util::StatusOr<util::Json> {
          if (raft->crashed()) return util::Status::Unavailable("crashed");
          const bool linearizable = req.at("linearizable").as_bool(true);
          if (linearizable && raft->role() != RaftRole::kLeader) {
            return util::Status::FailedPrecondition(
                "not leader; try " + (raft->known_leader().empty()
                                          ? std::string("unknown")
                                          : raft->known_leader()));
          }
          auto kv = store->Get(req.at("key").as_string());
          if (!kv.ok()) return kv.status();
          return util::Json::MakeObject()
              .Set("value", kv->value)
              .Set("mod_revision", kv->mod_revision)
              .Set("version", kv->version);
        });
  }
}

void KbCluster::Start() {
  for (Replica& r : replicas_) r.raft->Start();
}

int KbCluster::LeaderIndex() const {
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    if (!replicas_[i].raft->crashed() &&
        replicas_[i].raft->role() == RaftRole::kLeader) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Store* KbCluster::LeaderStore() {
  const int i = LeaderIndex();
  return i < 0 ? nullptr : replicas_[static_cast<std::size_t>(i)].store.get();
}

KbClient::KbClient(net::Network& network, KbCluster& cluster, net::HostId origin)
    : network_(network),
      cluster_(cluster),
      origin_(std::move(origin)),
      rpc_retry_(ClientRetryPolicy()) {
  network_.topology().AddHost(origin_);
}

int KbClient::GuessLeaderIndex(int hint_index) const {
  if (hint_index >= 0) return hint_index;
  const int known = cluster_.LeaderIndex();
  if (known >= 0) return known;
  return cached_leader_;
}

void KbClient::ProposeWithRetry(util::Json command, DoneCallback done,
                                int attempts_left, int hint_index) {
  if (attempts_left <= 0) {
    done(util::Status::Unavailable("KB unreachable after retries"));
    return;
  }
  const int target = GuessLeaderIndex(hint_index) %
                     static_cast<int>(cluster_.size());
  network_.CallWithRetry(
      origin_, cluster_.hosts()[static_cast<std::size_t>(target)], "kb.propose",
      command,
      [this, command, done = std::move(done), attempts_left,
       target](util::StatusOr<util::Json> reply) mutable {
        if (reply.ok()) {
          cached_leader_ = target;
          done(util::Status::Ok());
          return;
        }
        ++retries_;
        // Parse a "try <host>" hint if present; otherwise round-robin.
        int next_hint = -1;
        const std::string& msg = reply.status().message();
        const std::size_t pos = msg.rfind("try ");
        if (pos != std::string::npos) {
          const std::string hinted = msg.substr(pos + 4);
          for (std::size_t i = 0; i < cluster_.hosts().size(); ++i) {
            if (cluster_.hosts()[i] == hinted) {
              next_hint = static_cast<int>(i);
              break;
            }
          }
        }
        if (next_hint < 0) next_hint = (target + 1) % static_cast<int>(cluster_.size());
        // Small backoff so elections can settle.
        network_.engine().ScheduleAfter(
            sim::SimTime::Millis(50),
            [this, command = std::move(command), done = std::move(done),
             attempts_left, next_hint]() mutable {
              ProposeWithRetry(std::move(command), std::move(done),
                               attempts_left - 1, next_hint);
            });
      },
      rpc_retry_);
}

void KbClient::Put(const std::string& key, util::Json value, DoneCallback done) {
  util::Json cmd = util::Json::MakeObject()
                       .Set("op", "put")
                       .Set("key", key)
                       .Set("value", std::move(value))
                       .Set("lease", 0);
  ProposeWithRetry(std::move(cmd), std::move(done), 10, -1);
}

void KbClient::Delete(const std::string& key, DoneCallback done) {
  util::Json cmd = util::Json::MakeObject().Set("op", "del").Set("key", key);
  ProposeWithRetry(std::move(cmd), std::move(done), 10, -1);
}

void KbClient::Get(const std::string& key, GetCallback done) {
  const int target = GuessLeaderIndex(-1) % static_cast<int>(cluster_.size());
  util::Json req =
      util::Json::MakeObject().Set("key", key).Set("linearizable", true);
  network_.CallWithRetry(
      origin_, cluster_.hosts()[static_cast<std::size_t>(target)], "kb.get",
      std::move(req),
      [done = std::move(done)](util::StatusOr<util::Json> reply) {
        if (!reply.ok()) {
          done(reply.status());
          return;
        }
        done(reply->at("value"));
      },
      rpc_retry_);
}

}  // namespace myrtus::kb
