// Knowledge-Base cluster facade: N Raft replicas, each applying committed
// commands to its local MVCC store, plus a retrying client that discovers and
// follows the leader — the "one ontological KB, distributed across layers"
// of §III. Watches fire on every replica as entries apply, so a fog-local
// MIRTO agent observes updates without a round trip to the leader.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kb/raft.hpp"
#include "kb/store.hpp"
#include "net/transport.hpp"

namespace myrtus::kb {

/// One KB replica: a Raft node + the store it applies into.
struct Replica {
  std::unique_ptr<RaftNode> raft;
  std::unique_ptr<Store> store;
};

class KbCluster {
 public:
  /// Creates `replica_hosts.size()` replicas on the given network (the hosts
  /// must exist or be reachable in the topology; they are auto-added).
  KbCluster(net::Network& network, std::vector<net::HostId> replica_hosts,
            std::uint64_t seed, RaftConfig config = {});

  /// Starts all replicas (arms election timers).
  void Start();

  [[nodiscard]] std::size_t size() const { return replicas_.size(); }
  [[nodiscard]] Replica& replica(std::size_t i) { return replicas_[i]; }
  [[nodiscard]] const std::vector<net::HostId>& hosts() const { return hosts_; }

  /// Index of the current leader, or -1 when no leader is established.
  [[nodiscard]] int LeaderIndex() const;
  /// Convenience: the leader's store (nullptr without a leader).
  [[nodiscard]] Store* LeaderStore();

  /// Crash/recover by replica index (failure injection).
  void Crash(std::size_t i) { replicas_[i].raft->Crash(); }
  void Recover(std::size_t i) { replicas_[i].raft->Recover(); }

 private:
  net::Network& network_;
  std::vector<net::HostId> hosts_;
  std::vector<Replica> replicas_;
};

/// Client API: linearizable writes through the leader with bounded retries,
/// leader-reads, and local (serializable) reads from a chosen replica.
class KbClient {
 public:
  /// `origin` is the calling host (RPC latency is charged from there).
  KbClient(net::Network& network, KbCluster& cluster, net::HostId origin);

  using DoneCallback = std::function<void(util::Status)>;
  using GetCallback = std::function<void(util::StatusOr<util::Json>)>;

  /// Replicated put: resolves once the write is committed.
  void Put(const std::string& key, util::Json value, DoneCallback done);
  /// Replicated delete.
  void Delete(const std::string& key, DoneCallback done);
  /// Linearizable read served by the leader.
  void Get(const std::string& key, GetCallback done);

  [[nodiscard]] std::uint64_t retries() const { return retries_; }

  /// Transport-level retry policy for the client's RPC legs. Defaults to a
  /// short-attempt retrying policy; set net::RetryPolicy::None() to get the
  /// legacy single-attempt behavior (ablations, tests).
  void set_rpc_retry(net::RetryPolicy policy) { rpc_retry_ = policy; }
  [[nodiscard]] const net::RetryPolicy& rpc_retry() const { return rpc_retry_; }

 private:
  void ProposeWithRetry(util::Json command, DoneCallback done, int attempts_left,
                        int hint_index);
  int GuessLeaderIndex(int hint_index) const;

  net::Network& network_;
  KbCluster& cluster_;
  net::HostId origin_;
  net::RetryPolicy rpc_retry_;
  std::uint64_t retries_ = 0;
  int cached_leader_ = 0;
};

}  // namespace myrtus::kb
