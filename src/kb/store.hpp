// MVCC key-value store — the applied state machine behind the MYRTUS
// Knowledge Base. Mirrors etcd's data model (the technology the paper
// considers, §III fn.3): monotonically increasing store revision, per-key
// create/mod revisions, prefix range reads, prefix watches, and TTL leases.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/json.hpp"
#include "util/status.hpp"

namespace myrtus::kb {

/// A stored value with its MVCC metadata.
struct KeyValue {
  std::string key;
  util::Json value;
  std::int64_t create_revision = 0;
  std::int64_t mod_revision = 0;
  std::int64_t version = 0;   // per-key update counter
  std::int64_t lease_id = 0;  // 0 = no lease
};

/// A watch event.
struct WatchEvent {
  enum class Type { kPut, kDelete };
  Type type;
  KeyValue kv;  // for kDelete, `value` is the last value before deletion
};

/// In-memory MVCC store. Single-writer (the Raft apply loop), many readers.
class Store {
 public:
  /// Puts a value; returns the new store revision.
  std::int64_t Put(const std::string& key, util::Json value,
                   std::int64_t lease_id = 0);
  /// Deletes a key; returns the new revision, or nullopt if absent.
  std::optional<std::int64_t> Delete(const std::string& key);
  /// Point read.
  [[nodiscard]] util::StatusOr<KeyValue> Get(const std::string& key) const;
  /// All keys with the given prefix, in key order.
  [[nodiscard]] std::vector<KeyValue> Range(const std::string& prefix) const;
  /// Number of live keys.
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  /// Current store revision (increments on every mutation).
  [[nodiscard]] std::int64_t revision() const { return revision_; }

  /// --- Watches ---------------------------------------------------------
  using WatchCallback = std::function<void(const WatchEvent&)>;
  /// Registers a prefix watch; returns a watch id for cancellation.
  std::int64_t Watch(const std::string& prefix, WatchCallback cb);
  void CancelWatch(std::int64_t watch_id);

  /// --- Leases ----------------------------------------------------------
  /// Creates a lease expiring at `expiry_ns` (simulated clock, interpreted
  /// by the caller). Returns the lease id.
  std::int64_t GrantLease(std::int64_t expiry_ns);
  /// Extends a lease. False if unknown.
  bool RenewLease(std::int64_t lease_id, std::int64_t new_expiry_ns);
  /// Deletes all keys attached to leases expiring at or before `now_ns`.
  /// Returns the number of keys removed.
  std::size_t ExpireLeases(std::int64_t now_ns);
  /// Drops a lease without touching its keys: attached keys are detached
  /// (lease_id → 0), NOT deleted, and no watch events fire — revoking a
  /// superseded lease must not look like a member failure to watchers.
  /// False if the lease is unknown.
  bool RevokeLease(std::int64_t lease_id);
  /// Number of live (granted, not yet expired/revoked) leases.
  [[nodiscard]] std::size_t lease_count() const { return leases_.size(); }

 private:
  void Notify(const WatchEvent& event);

  std::map<std::string, KeyValue> data_;
  std::int64_t revision_ = 0;

  struct Watcher {
    std::int64_t id;
    std::string prefix;
    WatchCallback cb;
  };
  std::vector<Watcher> watchers_;
  std::int64_t next_watch_id_ = 1;

  std::map<std::int64_t, std::int64_t> leases_;  // id -> expiry_ns
  std::int64_t next_lease_id_ = 1;
};

}  // namespace myrtus::kb
