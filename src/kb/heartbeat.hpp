// Lease-based component liveness — the etcd pattern behind the paper's
// Resource Registry "snapshot of the components availability and their
// status" (§III/§VI). Every component's registry record is attached to a TTL
// lease the component must keep renewing; a crashed component stops renewing
// and its record evaporates, which prefix watchers (MIRTO agents) observe as
// a delete event — failure detection without any explicit probe.
#pragma once

#include <map>
#include <string>

#include "kb/registry.hpp"
#include "kb/store.hpp"
#include "sim/engine.hpp"

namespace myrtus::kb {

class HeartbeatService {
 public:
  /// Records expire `ttl` after their last renewal. The expiry sweeper runs
  /// every `ttl/2` once started.
  HeartbeatService(sim::Engine& engine, Store& store, sim::SimTime ttl);
  ~HeartbeatService();

  /// Registers a component: writes its record under a fresh lease and starts
  /// auto-renewal (the component-side keepalive loop).
  void Register(const NodeRecord& record);
  /// Stops renewing (models a crash/disconnect — the record then expires).
  void StopBeating(const std::string& node_id);
  /// True while the component's lease is being renewed.
  [[nodiscard]] bool IsBeating(const std::string& node_id) const;

  /// Starts the server-side expiry sweeper.
  void StartSweeper();
  void StopSweeper();

  [[nodiscard]] std::uint64_t expirations() const { return expirations_; }

 private:
  void Renew(const std::string& node_id);

  sim::Engine& engine_;
  Store& store_;
  sim::SimTime ttl_;
  struct Member {
    std::int64_t lease_id;
    sim::EventHandle keepalive;
    bool beating = true;
  };
  std::map<std::string, Member> members_;
  sim::EventHandle sweeper_;
  std::uint64_t expirations_ = 0;
};

}  // namespace myrtus::kb
