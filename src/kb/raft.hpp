// Raft consensus (Ongaro & Ousterhout) over the simulated network — the
// replication core of the MYRTUS Knowledge Base. Implements leader election,
// log replication, commit safety (leader completeness via the
// current-term-commit rule), crash/recover, and client proposal forwarding.
// Log compaction/snapshotting is out of scope (logs are bounded in our
// experiments).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace myrtus::kb {

enum class RaftRole : std::uint8_t { kFollower, kCandidate, kLeader };
std::string_view RaftRoleName(RaftRole role);

struct RaftConfig {
  sim::SimTime election_timeout_min = sim::SimTime::Millis(150);
  sim::SimTime election_timeout_max = sim::SimTime::Millis(300);
  sim::SimTime heartbeat_interval = sim::SimTime::Millis(50);
  std::size_t max_entries_per_append = 64;
  /// Retry profile for Raft's own RPCs (append-entries, vote requests) on
  /// lossy links. Only attempt count / backoff / breaker settings are taken
  /// from here; the timing fields are overridden per call so attempts stay
  /// inside the protocol's heartbeat and election windows.
  net::RetryPolicy rpc_retry = [] {
    net::RetryPolicy p;
    p.max_attempts = 2;
    p.initial_backoff = sim::SimTime::Millis(10);
    p.max_backoff = sim::SimTime::Millis(40);
    // No circuit breaker between quorum peers: on a lossy-but-alive link a
    // tripped breaker fast-fails append-entries for whole cooldown windows,
    // stalling commits far longer than the loss itself. Raft already owns
    // peer-failure handling (heartbeats, elections); breakers are for
    // optional destinations, not essential ones.
    p.use_circuit_breaker = false;
    return p;
  }();
};

struct LogEntry {
  std::int64_t term = 0;
  util::Json command;
};

class RaftNode {
 public:
  /// Called once per committed entry, in log order.
  using ApplyFn = std::function<void(const util::Json& command)>;
  /// Completion for Propose: OK once the entry is committed and applied on
  /// this leader, or an error (not leader / lost leadership / crashed).
  using ProposeCallback = std::function<void(util::StatusOr<std::int64_t>)>;

  RaftNode(net::Network& network, net::HostId self,
           std::vector<net::HostId> peers, std::uint64_t seed, ApplyFn apply,
           RaftConfig config = {});

  /// Registers RPC handlers and arms the election timer.
  void Start();

  /// Proposes a command. Fails immediately with FAILED_PRECONDITION and a
  /// leader hint in the message when this node is not the leader.
  void Propose(util::Json command, ProposeCallback done);

  /// Crash-stop: drops volatile state (role, timers); keeps the persistent
  /// state (term, vote, log) as a real node's disk would.
  void Crash();
  /// Restarts a crashed node as a follower.
  void Recover();

  [[nodiscard]] RaftRole role() const { return role_; }
  [[nodiscard]] bool crashed() const { return crashed_; }
  [[nodiscard]] std::int64_t current_term() const { return current_term_; }
  [[nodiscard]] std::int64_t commit_index() const { return commit_index_; }
  [[nodiscard]] std::int64_t last_applied() const { return last_applied_; }
  [[nodiscard]] std::size_t log_size() const { return log_.size() - 1; }
  [[nodiscard]] const net::HostId& self() const { return self_; }
  [[nodiscard]] const net::HostId& known_leader() const { return known_leader_; }

 private:
  // --- Role transitions --------------------------------------------------
  void BecomeFollower(std::int64_t term);
  void StartElection();
  void BecomeLeader();
  void ArmElectionTimer();
  void DisarmTimers();

  // --- RPC handlers (receiver side) --------------------------------------
  util::StatusOr<util::Json> OnRequestVote(const util::Json& req);
  util::StatusOr<util::Json> OnAppendEntries(const util::Json& req);

  // --- Leader machinery ---------------------------------------------------
  void SendAppendEntries(const net::HostId& peer);
  void BroadcastHeartbeat();
  void AdvanceCommitIndex();
  void ApplyCommitted();
  void FailPendingProposals(const util::Status& status);

  [[nodiscard]] std::int64_t LastLogIndex() const {
    return static_cast<std::int64_t>(log_.size()) - 1;
  }
  [[nodiscard]] std::int64_t LastLogTerm() const { return log_.back().term; }

  net::Network& network_;
  net::HostId self_;
  std::vector<net::HostId> peers_;  // excluding self
  util::Rng rng_;
  ApplyFn apply_;
  RaftConfig config_;

  // Persistent state (survives Crash()).
  std::int64_t current_term_ = 0;
  net::HostId voted_for_;
  std::vector<LogEntry> log_;  // index 0 is a sentinel (term 0)

  // Volatile state.
  RaftRole role_ = RaftRole::kFollower;
  bool crashed_ = false;
  std::int64_t commit_index_ = 0;
  std::int64_t last_applied_ = 0;
  net::HostId known_leader_;

  // Candidate state.
  std::size_t votes_received_ = 0;
  std::int64_t election_term_ = 0;

  // Leader state.
  std::map<net::HostId, std::int64_t> next_index_;
  std::map<net::HostId, std::int64_t> match_index_;
  std::map<net::HostId, bool> append_in_flight_;
  std::map<std::int64_t, ProposeCallback> pending_;  // log index -> cb

  sim::EventHandle election_timer_;
  sim::EventHandle heartbeat_timer_;
  std::uint64_t timer_epoch_ = 0;  // invalidates stale timer callbacks
};

}  // namespace myrtus::kb
