#include "sched/node_index.hpp"

#include <algorithm>
#include <bit>

namespace myrtus::sched {
namespace {

bool DevicesIncludeAccelerator(const continuum::ComputeNode& node) {
  for (const continuum::Device& d : node.devices()) {
    if (d.kind() == continuum::DeviceKind::kFpgaAccelerator ||
        d.kind() == continuum::DeviceKind::kRiscvCcu) {
      return true;
    }
  }
  return false;
}

// Unit separator between label key and value: cannot collide with either.
constexpr char kLabelSep = '\x1f';

std::string LabelKey(const std::string& key, const std::string& value) {
  std::string out;
  out.reserve(key.size() + value.size() + 1);
  out += key;
  out += kLabelSep;
  out += value;
  return out;
}

}  // namespace

int Bitmap::CountTrailingZeros(std::uint64_t word) {
  return std::countr_zero(word);
}

std::size_t Bitmap::Count() const {
  std::size_t n = 0;
  for (const std::uint64_t w : words_) n += static_cast<std::size_t>(std::popcount(w));
  return n;
}

Bitmap& Bitmap::AndWith(const Bitmap& other) {
  for (std::size_t w = 0; w < words_.size(); ++w) {
    words_[w] &= w < other.words_.size() ? other.words_[w] : 0;
  }
  return *this;
}

std::string CandidateQuery::CacheKey() const {
  // Record separator '\x1e' terminates free-form strings so adjacent
  // dimensions cannot alias.
  std::string key;
  if (restrict_cordoned) key += 'c';
  if (restrict_security) {
    key += 's';
    key += static_cast<char>('0' + static_cast<int>(min_security));
  }
  if (restrict_accelerator) key += 'a';
  if (layer != nullptr) {
    key += 'l';
    key += *layer;
    key += '\x1e';
  }
  if (selector != nullptr) {
    for (const auto& [k, v] : *selector) {
      key += 'k';
      key += k;
      key += kLabelSep;
      key += v;
      key += '\x1e';
    }
  }
  return key;
}

NodeState& NodeIndex::Add(continuum::ComputeNode* node,
                          std::map<std::string, std::string> labels) {
  const auto slot = static_cast<std::uint32_t>(arena_.size());
  NodeState& state = arena_.emplace_back();
  state.node = node;
  state.owner_ = this;
  state.slot_ = slot;
  id_to_slot_.emplace(node->id(), slot);

  cpu_allocated_.push_back(0.0);
  mem_allocated_mb_.push_back(0);
  mem_capacity_mb_.push_back(node->mem_capacity_mb());
  has_accelerator_.push_back(DevicesIncludeAccelerator(*node) ? 1 : 0);
  cordoned_.push_back(0);
  labels_.push_back(std::move(labels));

  const std::size_t bits = arena_.size();
  all_.Resize(bits);
  all_.Set(slot);
  not_cordoned_.Resize(bits);
  not_cordoned_.Set(slot);
  accelerator_.Resize(bits);
  if (has_accelerator_[slot] != 0) accelerator_.Set(slot);
  const auto level = static_cast<std::size_t>(node->security_level());
  for (std::size_t min = 0; min < security::kNumSecurityLevels; ++min) {
    security_at_least_[min].Resize(bits);
    if (level >= min) security_at_least_[min].Set(slot);
  }
  for (auto& [name, bitmap] : by_layer_) bitmap.Resize(bits);
  Bitmap& layer_bitmap =
      by_layer_[std::string(continuum::LayerName(node->layer()))];
  layer_bitmap.Resize(bits);
  layer_bitmap.Set(slot);
  for (auto& [name, bitmap] : by_label_) bitmap.Resize(bits);
  for (const auto& [k, v] : labels_[slot]) {
    Bitmap& label_bitmap = by_label_[LabelKey(k, v)];
    label_bitmap.Resize(bits);
    label_bitmap.Set(slot);
  }

  InvalidateCandidates();
  return state;
}

NodeState* NodeIndex::Find(const std::string& node_id) {
  const auto it = id_to_slot_.find(node_id);
  return it == id_to_slot_.end() ? nullptr : &arena_[it->second];
}

const NodeState* NodeIndex::Find(const std::string& node_id) const {
  const auto it = id_to_slot_.find(node_id);
  return it == id_to_slot_.end() ? nullptr : &arena_[it->second];
}

void NodeIndex::AddAllocation(std::uint32_t slot, double cpu,
                              std::uint64_t mem_mb) {
  cpu_allocated_[slot] += cpu;
  mem_allocated_mb_[slot] += mem_mb;
}

void NodeIndex::SubAllocation(std::uint32_t slot, double cpu,
                              std::uint64_t mem_mb) {
  // Clamp at zero: a reflected overwrite (peering) may have set the ledger
  // below the sum of committed amounts that are released later.
  cpu_allocated_[slot] = std::max(0.0, cpu_allocated_[slot] - cpu);
  mem_allocated_mb_[slot] -= std::min(mem_allocated_mb_[slot], mem_mb);
}

void NodeIndex::SetCpuAllocation(std::uint32_t slot, double cpu) {
  cpu_allocated_[slot] = cpu;
}

void NodeIndex::SetMemAllocation(std::uint32_t slot, std::uint64_t mem_mb) {
  mem_allocated_mb_[slot] = mem_mb;
}

void NodeIndex::SetCordoned(std::uint32_t slot, bool cordoned) {
  if ((cordoned_[slot] != 0) == cordoned) return;
  cordoned_[slot] = cordoned ? 1 : 0;
  if (cordoned) {
    not_cordoned_.Reset(slot);
  } else {
    not_cordoned_.Set(slot);
  }
  InvalidateCandidates();
}

void NodeIndex::SetLabel(std::uint32_t slot, const std::string& key,
                         const std::string& value) {
  auto& labels = labels_[slot];
  const auto it = labels.find(key);
  if (it != labels.end()) {
    if (it->second == value) return;
    const auto old = by_label_.find(LabelKey(key, it->second));
    if (old != by_label_.end()) old->second.Reset(slot);
    it->second = value;
  } else {
    labels.emplace(key, value);
  }
  Bitmap& bitmap = by_label_[LabelKey(key, value)];
  bitmap.Resize(arena_.size());
  bitmap.Set(slot);
  InvalidateCandidates();
}

const Bitmap& NodeIndex::Candidates(const CandidateQuery& q) const {
  const std::string key = q.CacheKey();
  if (const auto it = candidate_cache_.find(key);
      it != candidate_cache_.end()) {
    ++stats_.cache_hits;
    return it->second;
  }
  ++stats_.cache_misses;
  Bitmap out = all_;
  if (q.restrict_cordoned) out.AndWith(not_cordoned_);
  if (q.restrict_security) {
    out.AndWith(security_at_least_[static_cast<std::size_t>(q.min_security)]);
  }
  if (q.restrict_accelerator) out.AndWith(accelerator_);
  if (q.layer != nullptr) {
    const auto it = by_layer_.find(*q.layer);
    if (it != by_layer_.end()) {
      out.AndWith(it->second);
    } else {
      out.ClearAll();
    }
  }
  if (q.selector != nullptr) {
    for (const auto& [k, v] : *q.selector) {
      const auto it = by_label_.find(LabelKey(k, v));
      if (it != by_label_.end()) {
        out.AndWith(it->second);
      } else {
        out.ClearAll();
        break;
      }
    }
  }
  return candidate_cache_.emplace(key, std::move(out)).first->second;
}

void NodeIndex::InvalidateCandidates() {
  if (!candidate_cache_.empty()) {
    candidate_cache_.clear();
    ++stats_.invalidations;
  }
}

}  // namespace myrtus::sched
