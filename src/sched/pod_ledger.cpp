#include "sched/pod_ledger.hpp"

#include <utility>

#include "util/bytes.hpp"

namespace myrtus::sched {

namespace {

std::size_t NextPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

PodId PodLedger::Create(PodSpec spec) {
  const std::uint64_t hash = util::Fnv1a64(spec.name);
  Shard& shard = shards_[hash % kShardCount];
  if (FindRow(spec.name, hash) != UINT32_MAX) return kInvalidPodId;

  std::uint32_t row;
  if (!free_rows_.empty()) {
    row = free_rows_.back();
    free_rows_.pop_back();
    specs_[row] = std::move(spec);
  } else {
    row = static_cast<std::uint32_t>(alive_.size());
    phase_.push_back(0);
    node_slot_.push_back(kNoNodeSlot);
    bound_at_ns_.push_back(-1);
    committed_cpu_.push_back(0.0);
    committed_mem_mb_.push_back(0);
    generation_.push_back(1);
    alive_.push_back(0);
    specs_.push_back(std::move(spec));
  }
  phase_[row] = static_cast<std::uint8_t>(PodPhase::kPending);
  node_slot_[row] = kNoNodeSlot;
  bound_at_ns_[row] = -1;
  committed_cpu_[row] = 0.0;
  committed_mem_mb_[row] = 0;
  alive_[row] = 1;
  InsertName(shard, hash, row);
  ++live_;
  return MakeId(generation_[row], row);
}

void PodLedger::Erase(PodId id) {
  if (!Alive(id)) return;
  const std::uint32_t row = RowOf(id);
  EraseName(specs_[row].name, util::Fnv1a64(specs_[row].name));
  specs_[row] = PodSpec{};  // return the cold heap now, not at row reuse
  ++generation_[row];
  alive_[row] = 0;
  free_rows_.push_back(row);
  --live_;
}

PodId PodLedger::FindId(std::string_view name) const {
  const std::uint64_t hash = util::Fnv1a64(name);
  const std::uint32_t row = FindRow(name, hash);
  if (row == UINT32_MAX) return kInvalidPodId;
  return MakeId(generation_[row], row);
}

void PodLedger::SetPhase(PodId id, PodPhase phase) {
  if (!Alive(id)) return;
  phase_[RowOf(id)] = static_cast<std::uint8_t>(phase);
}

void PodLedger::Bind(PodId id, std::int32_t node_slot,
                     std::int64_t bound_at_ns, double committed_cpu,
                     std::uint64_t committed_mem_mb) {
  if (!Alive(id)) return;
  const std::uint32_t row = RowOf(id);
  phase_[row] = static_cast<std::uint8_t>(PodPhase::kRunning);
  node_slot_[row] = node_slot;
  bound_at_ns_[row] = bound_at_ns;
  committed_cpu_[row] = committed_cpu;
  committed_mem_mb_[row] = committed_mem_mb;
}

void PodLedger::ClearBinding(PodId id) {
  if (!Alive(id)) return;
  const std::uint32_t row = RowOf(id);
  node_slot_[row] = kNoNodeSlot;
  committed_cpu_[row] = 0.0;
  committed_mem_mb_[row] = 0;
}

void PodLedger::SetBoundAtNs(PodId id, std::int64_t at_ns) {
  if (!Alive(id)) return;
  bound_at_ns_[RowOf(id)] = at_ns;
}

std::uint32_t PodLedger::FindRow(std::string_view name,
                                 std::uint64_t hash) const {
  const Shard& shard = shards_[hash % kShardCount];
  if (shard.rows.empty()) return UINT32_MAX;
  const std::size_t mask = shard.rows.size() - 1;
  std::size_t i = (hash / kShardCount) & mask;
  while (true) {
    if (shard.state[i] == kEmpty) return UINT32_MAX;
    if (shard.state[i] == kFull) {
      const std::uint32_t row = shard.rows[i];
      if (specs_[row].name == name) return row;
    }
    i = (i + 1) & mask;
  }
}

void PodLedger::InsertName(Shard& shard, std::uint64_t hash,
                           std::uint32_t row) {
  // Grow (or scrub tombstones) before the shard crosses 0.7 load.
  if (shard.rows.empty() ||
      (shard.filled + 1) * 10 > shard.rows.size() * 7) {
    Rehash(shard, std::max(kMinShardCapacity, NextPow2((shard.used + 1) * 2)));
  }
  const std::size_t mask = shard.rows.size() - 1;
  std::size_t i = (hash / kShardCount) & mask;
  std::size_t target = SIZE_MAX;  // first tombstone on the probe path
  while (shard.state[i] == kFull || shard.state[i] == kTomb) {
    if (shard.state[i] == kTomb && target == SIZE_MAX) target = i;
    i = (i + 1) & mask;
  }
  if (target == SIZE_MAX) {
    target = i;
    ++shard.filled;  // consuming a fresh kEmpty slot
  }
  shard.rows[target] = row;
  shard.state[target] = kFull;
  ++shard.used;
}

void PodLedger::Rehash(Shard& shard, std::size_t capacity) {
  std::vector<std::uint32_t> old_rows = std::move(shard.rows);
  std::vector<std::uint8_t> old_state = std::move(shard.state);
  shard.rows.assign(capacity, 0);
  shard.state.assign(capacity, kEmpty);
  shard.used = 0;
  shard.filled = 0;
  const std::size_t mask = capacity - 1;
  for (std::size_t i = 0; i < old_rows.size(); ++i) {
    if (old_state[i] != kFull) continue;
    const std::uint32_t row = old_rows[i];
    const std::uint64_t hash = util::Fnv1a64(specs_[row].name);
    std::size_t j = (hash / kShardCount) & mask;
    while (shard.state[j] == kFull) j = (j + 1) & mask;
    shard.rows[j] = row;
    shard.state[j] = kFull;
    ++shard.used;
    ++shard.filled;
  }
}

void PodLedger::EraseName(std::string_view name, std::uint64_t hash) {
  Shard& shard = shards_[hash % kShardCount];
  if (shard.rows.empty()) return;
  const std::size_t mask = shard.rows.size() - 1;
  std::size_t i = (hash / kShardCount) & mask;
  while (shard.state[i] != kEmpty) {
    if (shard.state[i] == kFull && specs_[shard.rows[i]].name == name) {
      shard.state[i] = kTomb;  // filled stays: the probe chain must survive
      --shard.used;
      return;
    }
    i = (i + 1) & mask;
  }
}

}  // namespace myrtus::sched
