#include "sched/image_registry.hpp"

#include "security/sha2.hpp"

namespace myrtus::sched {

std::uint64_t ImageManifest::TotalBytes() const {
  std::uint64_t total = 0;
  for (const ImageLayer& l : layers) total += l.size_bytes;
  return total;
}

std::string ImageRegistry::DigestOf(const util::Bytes& content) {
  return "sha256:" + util::ToHex(security::Sha256::Digest(content));
}

util::Status ImageRegistry::Push(const std::string& name, const std::string& tag,
                                 const std::vector<util::Bytes>& layer_contents) {
  if (name.empty() || tag.empty()) {
    return util::Status::InvalidArgument("image name and tag required");
  }
  if (layer_contents.empty()) {
    return util::Status::InvalidArgument("image must have at least one layer");
  }
  // Validate + scan everything before mutating (atomic push).
  ImageManifest manifest;
  manifest.name = name;
  manifest.tag = tag;
  for (const util::Bytes& content : layer_contents) {
    ImageLayer layer;
    layer.digest = DigestOf(content);
    layer.size_bytes = content.size();
    if (scan_) {
      MYRTUS_RETURN_IF_ERROR(scan_(layer, content));
    }
    manifest.layers.push_back(std::move(layer));
  }
  for (std::size_t i = 0; i < layer_contents.size(); ++i) {
    blobs_.emplace(manifest.layers[i].digest, layer_contents[i]);
  }
  manifests_[manifest.Reference()] = std::move(manifest);
  return util::Status::Ok();
}

util::StatusOr<ImageManifest> ImageRegistry::Manifest(
    const std::string& reference) const {
  const auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    return util::Status::NotFound("image " + reference);
  }
  return it->second;
}

std::vector<std::string> ImageRegistry::ListImages() const {
  std::vector<std::string> out;
  for (const auto& [ref, manifest] : manifests_) out.push_back(ref);
  return out;
}

std::uint64_t ImageRegistry::StoredBytes() const {
  std::uint64_t total = 0;
  for (const auto& [digest, blob] : blobs_) total += blob.size();
  return total;
}

std::uint64_t ImageRegistry::LogicalBytes() const {
  std::uint64_t total = 0;
  for (const auto& [ref, manifest] : manifests_) total += manifest.TotalBytes();
  return total;
}

util::StatusOr<PullReceipt> ImageRegistry::Pull(const std::string& reference,
                                                const std::string& node_id) {
  const auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    return util::Status::NotFound("image " + reference);
  }
  PullReceipt receipt;
  std::set<std::string>& cache = node_cache_[node_id];
  for (const ImageLayer& layer : it->second.layers) {
    if (cache.count(layer.digest) > 0) {
      receipt.bytes_deduplicated += layer.size_bytes;
      ++receipt.layers_cached;
    } else {
      receipt.bytes_transferred += layer.size_bytes;
      ++receipt.layers_fetched;
      cache.insert(layer.digest);
    }
  }
  return receipt;
}

void ImageRegistry::EvictNodeCache(const std::string& node_id) {
  node_cache_.erase(node_id);
}

bool ImageRegistry::NodeHasImage(const std::string& reference,
                                 const std::string& node_id) const {
  const auto mit = manifests_.find(reference);
  const auto nit = node_cache_.find(node_id);
  if (mit == manifests_.end() || nit == node_cache_.end()) return false;
  for (const ImageLayer& layer : mit->second.layers) {
    if (nit->second.count(layer.digest) == 0) return false;
  }
  return true;
}

util::StatusOr<std::uint64_t> ImageRegistry::DeleteImage(
    const std::string& reference) {
  const auto it = manifests_.find(reference);
  if (it == manifests_.end()) {
    return util::Status::NotFound("image " + reference);
  }
  manifests_.erase(it);
  // GC: drop blobs no remaining manifest references.
  std::set<std::string> referenced;
  for (const auto& [ref, manifest] : manifests_) {
    for (const ImageLayer& layer : manifest.layers) {
      referenced.insert(layer.digest);
    }
  }
  std::uint64_t reclaimed = 0;
  for (auto bit = blobs_.begin(); bit != blobs_.end();) {
    if (referenced.count(bit->first) == 0) {
      reclaimed += bit->second.size();
      bit = blobs_.erase(bit);
    } else {
      ++bit;
    }
  }
  return reclaimed;
}

}  // namespace myrtus::sched
