// Sharded arena pod ledger: the cluster's pod table, rebuilt for the
// million-pod control plane. The former std::map<std::string, Pod> paid a
// red-black-tree node, a duplicated key string, and a fat AoS record per pod;
// here the hot columns the reconcile and MAPE loops actually touch (phase,
// bound node slot, committed cpu/mem, bind timestamp) live in dense
// struct-of-arrays vectors, cold PodSpecs live in a separate deque pool, and
// the name index is an open-addressing table sharded 16 ways by FNV-1a so no
// single probe array grows monstrous.
//
// Rows are recycled through a freelist; a PodId handle (generation<<32|row,
// generation >= 1) stays unforgeably stale after its pod is erased, so
// deployment tracking lists and reconcile dirty sets can hold PodIds and
// validate them lazily instead of storing owning strings (the classic ABA
// guard). All reads go through PodView, a non-owning handle that resolves
// hot columns by row and the node id through an optional resolver the
// Cluster installs (pods store node *slots*, 4 bytes, not id strings).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "sched/pod.hpp"

namespace myrtus::sched {

/// Stable pod handle: generation (>= 1) in the high 32 bits, arena row in
/// the low 32. Value 0 is never a live pod.
using PodId = std::uint64_t;
inline constexpr PodId kInvalidPodId = 0;
/// node_slot value for an unbound pod.
inline constexpr std::int32_t kNoNodeSlot = -1;

class PodLedger;

/// Non-owning read handle over one pod's columns. Invalidated by Erase of
/// the pod (generation check) — a default-constructed or stale lookup yields
/// an invalid view, which converts to false.
class PodView {
 public:
  PodView() = default;
  [[nodiscard]] bool valid() const { return ledger_ != nullptr; }
  explicit operator bool() const { return valid(); }

  [[nodiscard]] PodId id() const { return id_; }
  [[nodiscard]] const PodSpec& spec() const;
  [[nodiscard]] const std::string& name() const;
  [[nodiscard]] PodPhase phase() const;
  [[nodiscard]] std::int32_t node_slot() const;
  [[nodiscard]] bool bound() const { return node_slot() >= 0; }
  /// Id of the bound node via the owning ledger's resolver; empty when
  /// unbound (mirrors the historical Pod::node_id contract).
  [[nodiscard]] const std::string& node_id() const;
  [[nodiscard]] std::int64_t bound_at_ns() const;
  [[nodiscard]] double committed_cpu() const;
  [[nodiscard]] std::uint64_t committed_mem_mb() const;

 private:
  friend class PodLedger;
  PodView(const PodLedger* ledger, PodId id) : ledger_(ledger), id_(id) {}
  const PodLedger* ledger_ = nullptr;
  PodId id_ = kInvalidPodId;
};

class PodLedger {
 public:
  /// Maps a node slot to its id string; installed by the Cluster so
  /// PodView::node_id() stays ergonomic without storing strings per pod.
  using NodeIdResolver = std::function<const std::string&(std::int32_t slot)>;
  void set_node_id_resolver(NodeIdResolver resolver) {
    node_id_resolver_ = std::move(resolver);
  }

  /// Inserts a pod in phase kPending, unbound. kInvalidPodId when the name
  /// is already taken.
  PodId Create(PodSpec spec);
  /// Erases the pod, recycles its row, and bumps the row generation so any
  /// outstanding PodId for it goes stale. No-op on stale/invalid ids.
  void Erase(PodId id);

  [[nodiscard]] PodId FindId(std::string_view name) const;
  [[nodiscard]] PodView Find(std::string_view name) const {
    return View(FindId(name));
  }
  /// Invalid view for stale/unknown ids.
  [[nodiscard]] PodView View(PodId id) const {
    return Alive(id) ? PodView(this, id) : PodView();
  }
  [[nodiscard]] bool Alive(PodId id) const {
    const std::uint32_t row = RowOf(id);
    return id != kInvalidPodId && row < generation_.size() &&
           alive_[row] != 0 && generation_[row] == GenOf(id);
  }

  /// --- Hot-column mutators (no-ops on stale ids) --------------------------
  void SetPhase(PodId id, PodPhase phase);
  /// Records a placement: node slot, bind time, committed resources, and
  /// phase kRunning, in one row touch.
  void Bind(PodId id, std::int32_t node_slot, std::int64_t bound_at_ns,
            double committed_cpu, std::uint64_t committed_mem_mb);
  /// Clears slot and committed amounts. bound_at_ns is deliberately kept:
  /// the MAPE monitor reads first-bind latency even off evicted pods.
  void ClearBinding(PodId id);
  void SetBoundAtNs(PodId id, std::int64_t at_ns);

  [[nodiscard]] std::size_t size() const { return live_; }
  /// Total arena rows ever allocated (live + recycled) — test/debug surface.
  [[nodiscard]] std::size_t row_capacity() const { return alive_.size(); }

  /// Visits every live pod in row order (not name order).
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (std::uint32_t row = 0; row < alive_.size(); ++row) {
      if (alive_[row] != 0) fn(PodView(this, MakeId(generation_[row], row)));
    }
  }

 private:
  friend class PodView;
  static constexpr std::uint32_t kShardCount = 16;
  static constexpr std::size_t kMinShardCapacity = 64;
  enum : std::uint8_t { kEmpty = 0, kFull = 1, kTomb = 2 };

  struct Shard {
    std::vector<std::uint32_t> rows;
    std::vector<std::uint8_t> state;
    std::size_t used = 0;    // kFull slots
    std::size_t filled = 0;  // kFull + kTomb slots
  };

  static std::uint32_t RowOf(PodId id) {
    return static_cast<std::uint32_t>(id & 0xffffffffULL);
  }
  static std::uint32_t GenOf(PodId id) {
    return static_cast<std::uint32_t>(id >> 32);
  }
  static PodId MakeId(std::uint32_t gen, std::uint32_t row) {
    return (static_cast<PodId>(gen) << 32) | row;
  }

  void InsertName(Shard& shard, std::uint64_t hash, std::uint32_t row);
  void Rehash(Shard& shard, std::size_t capacity);
  [[nodiscard]] std::uint32_t FindRow(std::string_view name,
                                      std::uint64_t hash) const;
  void EraseName(std::string_view name, std::uint64_t hash);

  // SoA hot columns, indexed by row.
  std::vector<std::uint8_t> phase_;
  std::vector<std::int32_t> node_slot_;
  std::vector<std::int64_t> bound_at_ns_;
  std::vector<double> committed_cpu_;
  std::vector<std::uint64_t> committed_mem_mb_;
  std::vector<std::uint32_t> generation_;
  std::vector<std::uint8_t> alive_;
  // Cold pool, row-parallel; erased rows hold a default-constructed spec so
  // their heap strings are returned immediately.
  std::deque<PodSpec> specs_;

  std::vector<std::uint32_t> free_rows_;
  Shard shards_[kShardCount];
  std::size_t live_ = 0;
  NodeIdResolver node_id_resolver_;
};

inline const PodSpec& PodView::spec() const {
  return ledger_->specs_[PodLedger::RowOf(id_)];
}
inline const std::string& PodView::name() const { return spec().name; }
inline PodPhase PodView::phase() const {
  return static_cast<PodPhase>(ledger_->phase_[PodLedger::RowOf(id_)]);
}
inline std::int32_t PodView::node_slot() const {
  return ledger_->node_slot_[PodLedger::RowOf(id_)];
}
inline const std::string& PodView::node_id() const {
  static const std::string kEmptyId;
  const std::int32_t slot = node_slot();
  if (slot < 0 || !ledger_->node_id_resolver_) return kEmptyId;
  return ledger_->node_id_resolver_(slot);
}
inline std::int64_t PodView::bound_at_ns() const {
  return ledger_->bound_at_ns_[PodLedger::RowOf(id_)];
}
inline double PodView::committed_cpu() const {
  return ledger_->committed_cpu_[PodLedger::RowOf(id_)];
}
inline std::uint64_t PodView::committed_mem_mb() const {
  return ledger_->committed_mem_mb_[PodLedger::RowOf(id_)];
}

}  // namespace myrtus::sched
