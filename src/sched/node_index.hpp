// Indexed per-node scheduler state: a struct-of-arrays arena of hot ledger
// columns plus inverted indexes (bitmaps) over the structural placement
// dimensions — security level, layer, labels, accelerator presence,
// cordon state. The scheduler's indexed path intersects those bitmaps to
// obtain a candidate set instead of filtering every node per pod; capacity
// (cpu/memory headroom, node liveness) is always checked live per candidate
// because it changes on every bind.
//
// NodeState is a *handle* into the arena: all ledger reads and writes go
// through the owning NodeIndex, so there is exactly one accounting path and
// the bitmaps can never drift from the data they index. Structural mutations
// (labels, cordon, new nodes) invalidate the cached candidate bitmaps;
// allocation changes do not, which is what lets a reconcile pass admit a
// whole batch of pending pods through one candidate-set build.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "continuum/node.hpp"
#include "security/policy.hpp"
#include "util/status.hpp"
#include "util/units.hpp"

namespace myrtus::sched {

class NodeIndex;

/// Compact bitset over node slots. Word-parallel intersection plus set-bit
/// iteration in ascending slot order (== node insertion order), which is
/// what preserves the scan path's deterministic tie-breaking.
class Bitmap {
 public:
  void Resize(std::size_t bits) {
    words_.resize((bits + 63) / 64, 0);
    bits_ = bits;
  }
  void Set(std::size_t bit) { words_[bit / 64] |= 1ULL << (bit % 64); }
  void Reset(std::size_t bit) { words_[bit / 64] &= ~(1ULL << (bit % 64)); }
  [[nodiscard]] bool Test(std::size_t bit) const {
    return bit < bits_ && (words_[bit / 64] >> (bit % 64)) & 1ULL;
  }
  void ClearAll() { std::fill(words_.begin(), words_.end(), 0); }
  [[nodiscard]] std::size_t bits() const { return bits_; }
  [[nodiscard]] std::size_t Count() const;
  /// In-place intersection; missing words in `other` count as zero.
  Bitmap& AndWith(const Bitmap& other);
  /// Calls `fn(slot)` for every set bit, ascending.
  template <typename Fn>
  void ForEachSet(Fn&& fn) const {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      std::uint64_t word = words_[w];
      while (word != 0) {
        fn(w * 64 + static_cast<std::size_t>(CountTrailingZeros(word)));
        word &= word - 1;
      }
    }
  }

 private:
  static int CountTrailingZeros(std::uint64_t word);
  std::size_t bits_ = 0;
  std::vector<std::uint64_t> words_;
};

/// Scheduler-side view of one node's allocatable state. The scheduler tracks
/// requests (like kube's `requested`), independent of instantaneous device
/// utilization. The ledger itself lives in the owning NodeIndex's SoA
/// columns; this handle only reads it. Mutations go through the index (via
/// Cluster), keeping accounting single-pathed and the bitmaps coherent.
class NodeState {
 public:
  continuum::ComputeNode* node = nullptr;

  /// Capacity is read live: device operating points may change at runtime.
  [[nodiscard]] double cpu_capacity() const { return node->CpuCapacity(); }
  [[nodiscard]] std::uint64_t mem_capacity_mb() const;
  [[nodiscard]] double cpu_allocated() const;
  [[nodiscard]] std::uint64_t mem_allocated_mb() const;
  [[nodiscard]] bool cordoned() const;
  [[nodiscard]] const std::map<std::string, std::string>& labels() const;
  /// Accelerator presence, sampled when the node joined the index (register
  /// devices before Cluster::AddNode).
  [[nodiscard]] bool HasAccelerator() const;
  [[nodiscard]] double CpuFree() const {
    return cpu_capacity() - cpu_allocated();
  }
  /// Free memory clamped at zero: the allocation ledger may legitimately
  /// exceed capacity (peering reflection), and the unsigned subtraction must
  /// not wrap into "plenty of room".
  [[nodiscard]] std::uint64_t MemFreeMb() const {
    return util::SubSat(mem_capacity_mb(), mem_allocated_mb());
  }
  [[nodiscard]] std::uint32_t slot() const { return slot_; }

 private:
  friend class NodeIndex;
  NodeIndex* owner_ = nullptr;
  std::uint32_t slot_ = 0;
};

/// Structural restrictions for one candidate lookup. Pointers borrow from the
/// pod spec and must outlive the Candidates() call. A null pointer (or an
/// unset flag) means "dimension unrestricted".
struct CandidateQuery {
  bool restrict_cordoned = false;
  bool restrict_security = false;
  security::SecurityLevel min_security = security::SecurityLevel::kLow;
  bool restrict_accelerator = false;
  const std::string* layer = nullptr;
  const std::map<std::string, std::string>* selector = nullptr;

  [[nodiscard]] std::string CacheKey() const;
};

class NodeIndex {
 public:
  /// Registers a node; slots are assigned in insertion order and never
  /// reused. The node must outlive the index.
  NodeState& Add(continuum::ComputeNode* node,
                 std::map<std::string, std::string> labels);
  [[nodiscard]] std::size_t size() const { return arena_.size(); }
  [[nodiscard]] NodeState* Find(const std::string& node_id);
  [[nodiscard]] const NodeState* Find(const std::string& node_id) const;
  [[nodiscard]] NodeState& at(std::size_t slot) { return arena_[slot]; }
  [[nodiscard]] const NodeState& at(std::size_t slot) const {
    return arena_[slot];
  }

  /// --- Allocation ledger (non-structural: candidate cache survives) ------
  void AddAllocation(std::uint32_t slot, double cpu, std::uint64_t mem_mb);
  void SubAllocation(std::uint32_t slot, double cpu, std::uint64_t mem_mb);
  void SetCpuAllocation(std::uint32_t slot, double cpu);
  void SetMemAllocation(std::uint32_t slot, std::uint64_t mem_mb);

  /// --- Structural mutators (invalidate the candidate cache) --------------
  void SetCordoned(std::uint32_t slot, bool cordoned);
  void SetLabel(std::uint32_t slot, const std::string& key,
                const std::string& value);

  /// Slots passing every structural restriction in `q`, as an intersection
  /// of the inverted-index bitmaps. Cached per query shape until the next
  /// structural mutation; the returned reference is valid until then.
  [[nodiscard]] const Bitmap& Candidates(const CandidateQuery& q) const;

  struct Stats {
    std::uint64_t cache_hits = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t invalidations = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  friend class NodeState;
  void InvalidateCandidates();

  // Handles; deque keeps them pointer-stable as the fleet grows.
  std::deque<NodeState> arena_;
  std::unordered_map<std::string, std::uint32_t> id_to_slot_;

  // SoA hot columns, indexed by slot. Memory capacity is immutable on
  // ComputeNode, so it is cached here; cpu capacity is not (operating
  // points).
  std::vector<double> cpu_allocated_;
  std::vector<std::uint64_t> mem_allocated_mb_;
  std::vector<std::uint64_t> mem_capacity_mb_;
  std::vector<std::uint8_t> has_accelerator_;
  std::vector<std::uint8_t> cordoned_;
  std::vector<std::map<std::string, std::string>> labels_;

  // Inverted indexes.
  Bitmap all_;
  Bitmap not_cordoned_;
  Bitmap accelerator_;
  Bitmap security_at_least_[security::kNumSecurityLevels];
  std::map<std::string, Bitmap> by_layer_;              // by LayerName
  std::map<std::string, Bitmap> by_label_;              // "key\x1fvalue"

  mutable std::map<std::string, Bitmap> candidate_cache_;
  mutable Stats stats_;
};

inline std::uint64_t NodeState::mem_capacity_mb() const {
  return owner_->mem_capacity_mb_[slot_];
}
inline double NodeState::cpu_allocated() const {
  return owner_->cpu_allocated_[slot_];
}
inline std::uint64_t NodeState::mem_allocated_mb() const {
  return owner_->mem_allocated_mb_[slot_];
}
inline bool NodeState::cordoned() const {
  return owner_->cordoned_[slot_] != 0;
}
inline const std::map<std::string, std::string>& NodeState::labels() const {
  return owner_->labels_[slot_];
}
inline bool NodeState::HasAccelerator() const {
  return owner_->has_accelerator_[slot_] != 0;
}

}  // namespace myrtus::sched
