// Pod/workload model for the kube-like low-level orchestrator the paper
// adopts at every layer ("all layers support Kubernetes as low-level
// orchestrator", §III). A pod is the unit of placement; deployments manage
// replica sets of pods declaratively.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "security/policy.hpp"
#include "util/json.hpp"

namespace myrtus::sched {

enum class PodPhase : std::uint8_t {
  kPending,
  kBound,
  kRunning,
  kSucceeded,
  kFailed,
  kEvicted,
};
std::string_view PodPhaseName(PodPhase phase);

/// Placement requirements of one pod.
struct PodSpec {
  std::string name;
  double cpu_request = 0.5;       // abstract CPU units (capacity scale)
  std::uint64_t mem_request_mb = 128;
  security::SecurityLevel min_security = security::SecurityLevel::kLow;
  bool needs_accelerator = false;
  int priority = 0;               // higher preempts lower
  std::string layer_affinity;     // "", "edge", "fog", "cloud"
  std::map<std::string, std::string> node_selector;  // label constraints
  double expected_load = 0.0;     // abstract work rate, for energy scoring

  [[nodiscard]] util::Json ToJson() const;
  static PodSpec FromJson(const util::Json& j);
};

// Live pod state (phase, bound node, committed resources) lives in the
// sharded SoA PodLedger (sched/pod_ledger.hpp), read through PodView handles.
// Committed amounts are recorded at bind time and released exactly (not the
// spec's current requests), so the NodeState and ComputeNode ledgers stay
// equal even if a spec is edited while the pod runs.

}  // namespace myrtus::sched
