// Declarative cluster controller: deployments (replicated pod templates),
// a reconciliation loop that keeps actual state converged with desired state
// (rebinding pods off failed/cordoned nodes), priority preemption, and a
// horizontal autoscaler — the kube-like substrate MIRTO drives (§III/§IV).
//
// Node state lives in a NodeIndex (SoA ledger + inverted indexes); pod state
// lives in a PodLedger (sharded name index + SoA hot columns, PodId handles).
// Every resource commit and release flows through CommitBind/
// ReleasePodResources, the single accounting path that keeps the scheduler
// ledger and the ComputeNode memory ledger equal by construction. Reconcile
// is incremental: it walks dirty sets (unbound pods, down nodes' pod rosters)
// instead of the whole pod table, and the pending-pod batch is admitted
// through one cached candidate-set build. Bind/delete events fan out to
// registered listeners so MAPE monitors can track pod lifecycle without
// sweeping the table.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/node_index.hpp"
#include "sched/pod_ledger.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace myrtus::sched {

struct Deployment {
  std::string name;
  PodSpec pod_template;
  int replicas = 1;
  // Autoscaler (disabled when max_replicas == 0).
  int min_replicas = 1;
  int max_replicas = 0;
  std::function<double()> load_signal;  // abstract demand (units of cpu)
};

class Cluster {
 public:
  /// Which scheduler execution path binds use. Both produce identical
  /// verdicts (differential-tested); kScan exists for ablation and tests.
  enum class SchedulePath : std::uint8_t { kIndexed, kScan };

  Cluster(sim::Engine& engine, Scheduler scheduler);

  /// Registers a node with optional labels. The node must outlive the
  /// cluster; register its devices first (accelerator presence is sampled
  /// here).
  void AddNode(continuum::ComputeNode* node,
               std::map<std::string, std::string> labels = {});
  [[nodiscard]] NodeState* FindNodeState(const std::string& node_id);
  [[nodiscard]] std::vector<NodeState*> NodeStates();
  void Cordon(const std::string& node_id, bool cordoned);
  /// Sets one node label through the index, keeping the inverted label index
  /// coherent. NOT_FOUND for unknown nodes.
  util::Status SetNodeLabel(const std::string& node_id, const std::string& key,
                            const std::string& value);
  /// Overwrites a node's allocation ledger to mirror external state (liqo
  /// peering reflects remote usage onto its virtual node). The reflected
  /// value may exceed capacity; free-resource reads clamp at zero.
  util::Status SetReflectedCpuAllocation(const std::string& node_id,
                                         double cpu);
  util::Status SetReflectedMemAllocation(const std::string& node_id,
                                         std::uint64_t mem_mb);

  /// --- Direct pod operations --------------------------------------------
  /// Schedules and binds one pod. On success resources are reserved.
  util::StatusOr<std::string> BindPod(const PodSpec& spec);
  /// Binds a pod to a specific node (MIRTO directives). Validates readiness,
  /// resources, security level, and accelerator requirements on the target.
  util::StatusOr<std::string> BindPodToNode(const PodSpec& spec,
                                            const std::string& node_id);
  /// Binding with preemption: when no node fits, evicts the cheapest set of
  /// strictly-lower-priority pods that makes room on some node. If the
  /// post-eviction bind still fails, the victims are rolled back onto their
  /// original nodes (nothing is gained, so nothing may be lost).
  util::StatusOr<std::string> BindPodWithPreemption(const PodSpec& spec);
  /// Schedules without binding (negotiation bids / what-if probes). Uses the
  /// indexed path; no cluster state changes.
  [[nodiscard]] util::StatusOr<ScheduleResult> DryRunSchedule(
      const PodSpec& spec) const;
  /// Unbinds and releases resources. NOT_FOUND if absent.
  util::Status DeletePod(const std::string& pod_name);
  [[nodiscard]] PodView FindPod(const std::string& pod_name) const {
    return pods_.Find(pod_name);
  }
  [[nodiscard]] PodView PodById(PodId id) const { return pods_.View(id); }
  /// Pods bound to `node_id`, in pod-name order (the historical contract;
  /// rosters are kept name-sorted).
  [[nodiscard]] std::vector<PodView> PodsOnNode(const std::string& node_id) const;
  [[nodiscard]] std::size_t RunningPods() const { return running_count_; }
  [[nodiscard]] std::size_t PendingPods() const { return pending_count_; }

  /// --- Pod lifecycle events ----------------------------------------------
  /// Listeners fire synchronously after a pod binds (CommitBind success,
  /// including reschedules and preemption rollbacks) or after a pod is
  /// deleted. This is what lets an event-driven monitor track deploy-to-bind
  /// waits without sweeping every pending pod each iteration.
  struct PodEvents {
    std::function<void(const std::string& pod_name)> on_bound;
    std::function<void(const std::string& pod_name)> on_deleted;
  };
  int AddPodEventListener(PodEvents events) {
    pod_listeners_.push_back(std::move(events));
    return static_cast<int>(pod_listeners_.size()) - 1;
  }

  /// --- Deployments & reconciliation --------------------------------------
  void ApplyDeployment(Deployment deployment);
  util::Status ScaleDeployment(const std::string& name, int replicas);
  [[nodiscard]] int DeploymentReadyReplicas(const std::string& name) const;

  /// One reconciliation pass: evict pods from failed nodes, (re)create
  /// missing replicas, run autoscalers, retry unbound pods.
  void Reconcile();
  /// Runs Reconcile() every `period` on the engine.
  void StartReconcileLoop(sim::SimTime period);
  void StopReconcileLoop();

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t reschedules() const { return reschedules_; }
  [[nodiscard]] const NodeIndex& index() const { return index_; }
  void set_schedule_path(SchedulePath path) { schedule_path_ = path; }
  [[nodiscard]] SchedulePath schedule_path() const { return schedule_path_; }

 private:
  util::StatusOr<std::string> TryBind(PodId id);
  /// The single accounting path for placements: reserves node memory,
  /// charges the index ledger, and records the committed amounts on the pod.
  util::Status CommitBind(PodId id, NodeState& target);
  /// The single accounting path for releases: refunds exactly the committed
  /// amounts to both ledgers and clears the pod's binding.
  void ReleasePodResources(PodId id);
  /// Marks a live unbound pod pending retry (pushes to unbound_, counts it).
  void MarkUnbound(PodId id);
  void RosterInsert(std::int32_t slot, PodId id);
  void RosterErase(std::int32_t slot, PodId id);
  void NotifyBound(const std::string& pod_name);
  void NotifyDeleted(const std::string& pod_name);
  util::Status DeletePodById(PodId id);
  std::string NextPodName(const std::string& base);

  sim::Engine& engine_;
  Scheduler scheduler_;
  NodeIndex index_;
  SchedulePath schedule_path_ = SchedulePath::kIndexed;
  PodLedger pods_;
  std::map<std::string, Deployment> deployments_;
  std::map<std::string, std::vector<PodId>> deployment_pods_;
  // Dirty-set reconcile state. Invariant: every live pod is either bound
  // (on its node's roster in pods_by_node_) or counted in pending_count_
  // with its id somewhere in unbound_. unbound_ tolerates stale/already-
  // bound ids (lazily filtered at retry, which sorts by name to match the
  // historical full-map walk order); pending_count_ is exact.
  std::vector<PodId> unbound_;
  std::size_t pending_count_ = 0;
  // Per node slot, bound pod ids kept sorted by pod name.
  std::vector<std::vector<PodId>> pods_by_node_;
  std::size_t running_count_ = 0;
  std::vector<PodEvents> pod_listeners_;
  sim::EventHandle reconcile_loop_;
  sim::Metrics metrics_;
  std::uint64_t evictions_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t name_counter_ = 0;
};

}  // namespace myrtus::sched
