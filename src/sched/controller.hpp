// Declarative cluster controller: deployments (replicated pod templates),
// a reconciliation loop that keeps actual state converged with desired state
// (rebinding pods off failed/cordoned nodes), priority preemption, and a
// horizontal autoscaler — the kube-like substrate MIRTO drives (§III/§IV).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace myrtus::sched {

struct Deployment {
  std::string name;
  PodSpec pod_template;
  int replicas = 1;
  // Autoscaler (disabled when max_replicas == 0).
  int min_replicas = 1;
  int max_replicas = 0;
  std::function<double()> load_signal;  // abstract demand (units of cpu)
};

class Cluster {
 public:
  Cluster(sim::Engine& engine, Scheduler scheduler);

  /// Registers a node with optional labels. The node must outlive the cluster.
  void AddNode(continuum::ComputeNode* node,
               std::map<std::string, std::string> labels = {});
  [[nodiscard]] NodeState* FindNodeState(const std::string& node_id);
  [[nodiscard]] std::vector<NodeState*> NodeStates();
  void Cordon(const std::string& node_id, bool cordoned);

  /// --- Direct pod operations --------------------------------------------
  /// Schedules and binds one pod. On success resources are reserved.
  util::StatusOr<std::string> BindPod(const PodSpec& spec);
  /// Binds a pod to a specific node (MIRTO directives). Validates readiness,
  /// resources, security level, and accelerator requirements on the target.
  util::StatusOr<std::string> BindPodToNode(const PodSpec& spec,
                                            const std::string& node_id);
  /// Binding with preemption: when no node fits, evicts the cheapest set of
  /// strictly-lower-priority pods that makes room on some node.
  util::StatusOr<std::string> BindPodWithPreemption(const PodSpec& spec);
  /// Unbinds and releases resources. NOT_FOUND if absent.
  util::Status DeletePod(const std::string& pod_name);
  [[nodiscard]] const Pod* FindPod(const std::string& pod_name) const;
  [[nodiscard]] std::vector<const Pod*> PodsOnNode(const std::string& node_id) const;
  [[nodiscard]] std::size_t RunningPods() const;
  [[nodiscard]] std::size_t PendingPods() const;

  /// --- Deployments & reconciliation --------------------------------------
  void ApplyDeployment(Deployment deployment);
  util::Status ScaleDeployment(const std::string& name, int replicas);
  [[nodiscard]] int DeploymentReadyReplicas(const std::string& name) const;

  /// One reconciliation pass: evict pods from failed nodes, (re)create
  /// missing replicas, run autoscalers, retry pending pods.
  void Reconcile();
  /// Runs Reconcile() every `period` on the engine.
  void StartReconcileLoop(sim::SimTime period);
  void StopReconcileLoop();

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t reschedules() const { return reschedules_; }

 private:
  util::StatusOr<std::string> TryBind(Pod& pod);
  void ReleasePodResources(Pod& pod);
  std::string NextPodName(const std::string& base);

  sim::Engine& engine_;
  Scheduler scheduler_;
  std::vector<std::unique_ptr<NodeState>> nodes_;
  std::map<std::string, Pod> pods_;  // by pod name
  std::map<std::string, Deployment> deployments_;
  std::map<std::string, std::vector<std::string>> deployment_pods_;
  sim::EventHandle reconcile_loop_;
  sim::Metrics metrics_;
  std::uint64_t evictions_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t name_counter_ = 0;
};

}  // namespace myrtus::sched
