// Declarative cluster controller: deployments (replicated pod templates),
// a reconciliation loop that keeps actual state converged with desired state
// (rebinding pods off failed/cordoned nodes), priority preemption, and a
// horizontal autoscaler — the kube-like substrate MIRTO drives (§III/§IV).
//
// Node state lives in a NodeIndex (SoA ledger + inverted indexes); every
// resource commit and release flows through CommitBind/ReleasePodResources,
// the single accounting path that keeps the scheduler ledger and the
// ComputeNode memory ledger equal by construction. Reconcile is incremental:
// it walks dirty sets (unbound pods, down nodes' pod rosters) instead of the
// whole pod map, and the pending-pod batch is admitted through one cached
// candidate-set build.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "sched/node_index.hpp"
#include "sched/scheduler.hpp"
#include "sim/engine.hpp"
#include "sim/trace.hpp"

namespace myrtus::sched {

struct Deployment {
  std::string name;
  PodSpec pod_template;
  int replicas = 1;
  // Autoscaler (disabled when max_replicas == 0).
  int min_replicas = 1;
  int max_replicas = 0;
  std::function<double()> load_signal;  // abstract demand (units of cpu)
};

class Cluster {
 public:
  /// Which scheduler execution path binds use. Both produce identical
  /// verdicts (differential-tested); kScan exists for ablation and tests.
  enum class SchedulePath : std::uint8_t { kIndexed, kScan };

  Cluster(sim::Engine& engine, Scheduler scheduler);

  /// Registers a node with optional labels. The node must outlive the
  /// cluster; register its devices first (accelerator presence is sampled
  /// here).
  void AddNode(continuum::ComputeNode* node,
               std::map<std::string, std::string> labels = {});
  [[nodiscard]] NodeState* FindNodeState(const std::string& node_id);
  [[nodiscard]] std::vector<NodeState*> NodeStates();
  void Cordon(const std::string& node_id, bool cordoned);
  /// Sets one node label through the index, keeping the inverted label index
  /// coherent. NOT_FOUND for unknown nodes.
  util::Status SetNodeLabel(const std::string& node_id, const std::string& key,
                            const std::string& value);
  /// Overwrites a node's allocation ledger to mirror external state (liqo
  /// peering reflects remote usage onto its virtual node). The reflected
  /// value may exceed capacity; free-resource reads clamp at zero.
  util::Status SetReflectedCpuAllocation(const std::string& node_id,
                                         double cpu);
  util::Status SetReflectedMemAllocation(const std::string& node_id,
                                         std::uint64_t mem_mb);

  /// --- Direct pod operations --------------------------------------------
  /// Schedules and binds one pod. On success resources are reserved.
  util::StatusOr<std::string> BindPod(const PodSpec& spec);
  /// Binds a pod to a specific node (MIRTO directives). Validates readiness,
  /// resources, security level, and accelerator requirements on the target.
  util::StatusOr<std::string> BindPodToNode(const PodSpec& spec,
                                            const std::string& node_id);
  /// Binding with preemption: when no node fits, evicts the cheapest set of
  /// strictly-lower-priority pods that makes room on some node. If the
  /// post-eviction bind still fails, the victims are rolled back onto their
  /// original nodes (nothing is gained, so nothing may be lost).
  util::StatusOr<std::string> BindPodWithPreemption(const PodSpec& spec);
  /// Schedules without binding (negotiation bids / what-if probes). Uses the
  /// indexed path; no cluster state changes.
  [[nodiscard]] util::StatusOr<ScheduleResult> DryRunSchedule(
      const PodSpec& spec) const;
  /// Unbinds and releases resources. NOT_FOUND if absent.
  util::Status DeletePod(const std::string& pod_name);
  [[nodiscard]] const Pod* FindPod(const std::string& pod_name) const;
  [[nodiscard]] std::vector<const Pod*> PodsOnNode(const std::string& node_id) const;
  [[nodiscard]] std::size_t RunningPods() const { return running_count_; }
  [[nodiscard]] std::size_t PendingPods() const { return unbound_.size(); }

  /// --- Deployments & reconciliation --------------------------------------
  void ApplyDeployment(Deployment deployment);
  util::Status ScaleDeployment(const std::string& name, int replicas);
  [[nodiscard]] int DeploymentReadyReplicas(const std::string& name) const;

  /// One reconciliation pass: evict pods from failed nodes, (re)create
  /// missing replicas, run autoscalers, retry unbound pods.
  void Reconcile();
  /// Runs Reconcile() every `period` on the engine.
  void StartReconcileLoop(sim::SimTime period);
  void StopReconcileLoop();

  [[nodiscard]] sim::Metrics& metrics() { return metrics_; }
  [[nodiscard]] std::uint64_t evictions() const { return evictions_; }
  [[nodiscard]] std::uint64_t reschedules() const { return reschedules_; }
  [[nodiscard]] const NodeIndex& index() const { return index_; }
  void set_schedule_path(SchedulePath path) { schedule_path_ = path; }
  [[nodiscard]] SchedulePath schedule_path() const { return schedule_path_; }

 private:
  util::StatusOr<std::string> TryBind(Pod& pod);
  /// The single accounting path for placements: reserves node memory,
  /// charges the index ledger, and records the committed amounts on the pod.
  util::Status CommitBind(Pod& pod, NodeState& target);
  /// The single accounting path for releases: refunds exactly the committed
  /// amounts to both ledgers.
  void ReleasePodResources(Pod& pod);
  std::string NextPodName(const std::string& base);

  sim::Engine& engine_;
  Scheduler scheduler_;
  NodeIndex index_;
  SchedulePath schedule_path_ = SchedulePath::kIndexed;
  std::map<std::string, Pod> pods_;  // by pod name
  std::map<std::string, Deployment> deployments_;
  std::map<std::string, std::vector<std::string>> deployment_pods_;
  // Dirty-set reconcile state. Invariant: every pod is either running (its
  // name in pods_by_node_[its node]) or awaiting binding (in unbound_).
  // std::set keeps retry order == pod-name order, matching the historical
  // full-map walk.
  std::set<std::string> unbound_;
  std::unordered_map<std::string, std::set<std::string>> pods_by_node_;
  std::size_t running_count_ = 0;
  sim::EventHandle reconcile_loop_;
  sim::Metrics metrics_;
  std::uint64_t evictions_ = 0;
  std::uint64_t reschedules_ = 0;
  std::uint64_t name_counter_ = 0;
};

}  // namespace myrtus::sched
