// Filter → score → bind scheduling pipeline, mirroring kube-scheduler's
// framework. Filters eliminate infeasible nodes (resources, security level,
// accelerator, layer affinity, labels); scorers rank the survivors
// (least-allocated, balanced, energy, latency-to-consumer).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "continuum/node.hpp"
#include "sched/pod.hpp"
#include "util/status.hpp"

namespace myrtus::sched {

/// Scheduler-side bookkeeping of one node's allocatable state. The scheduler
/// tracks requests (like kube's `requested`), independent of instantaneous
/// device utilization.
struct NodeState {
  continuum::ComputeNode* node = nullptr;
  double cpu_allocated = 0.0;
  std::uint64_t mem_allocated_mb = 0;
  std::map<std::string, std::string> labels;
  bool cordoned = false;  // unschedulable (drain / MIRTO directive)

  [[nodiscard]] double cpu_capacity() const { return node->CpuCapacity(); }
  [[nodiscard]] std::uint64_t mem_capacity_mb() const {
    return node->mem_capacity_mb();
  }
  [[nodiscard]] double CpuFree() const {
    return cpu_capacity() - cpu_allocated;
  }
  [[nodiscard]] bool HasAccelerator() const;
};

/// A filter rejects a node outright (returns a human-readable reason) or
/// passes it (empty optional).
using FilterFn = std::function<std::optional<std::string>(
    const PodSpec& pod, const NodeState& node)>;
/// A scorer returns [0,1]; higher is better.
using ScoreFn = std::function<double(const PodSpec& pod, const NodeState& node)>;

struct ScorePlugin {
  std::string name;
  double weight = 1.0;
  ScoreFn fn;
};

/// Built-in plugins.
namespace plugins {
FilterFn FitsResources();
FilterFn SecurityLevel();
FilterFn Accelerator();
FilterFn LayerAffinity();
FilterFn NodeSelector();
FilterFn NotCordoned();
FilterFn NodeReady();

ScorePlugin LeastAllocated(double weight = 1.0);
ScorePlugin Balanced(double weight = 1.0);
/// Prefers nodes whose active operating points draw less power per capacity.
ScorePlugin EnergyEfficient(double weight = 1.0);
/// Prefers the layer named in `preferred` (soft affinity).
ScorePlugin PreferLayer(const std::string& preferred, double weight = 1.0);
}  // namespace plugins

struct ScheduleResult {
  std::string node_id;
  double score = 0.0;
  std::vector<std::pair<std::string, std::string>> rejections;  // node, reason
};

class Scheduler {
 public:
  /// Default pipeline: all built-in filters, least-allocated + balanced.
  static Scheduler Default();

  void AddFilter(FilterFn f) { filters_.push_back(std::move(f)); }
  void AddScorer(ScorePlugin s) { scorers_.push_back(std::move(s)); }
  void ClearScorers() { scorers_.clear(); }

  /// Picks the best feasible node. RESOURCE_EXHAUSTED when none fits (the
  /// result's rejection list explains why, per node).
  [[nodiscard]] util::StatusOr<ScheduleResult> Schedule(
      const PodSpec& pod, const std::vector<NodeState*>& nodes) const;

 private:
  std::vector<FilterFn> filters_;
  std::vector<ScorePlugin> scorers_;
};

}  // namespace myrtus::sched
