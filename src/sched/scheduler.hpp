// Filter → score → bind scheduling pipeline, mirroring kube-scheduler's
// framework. Filters eliminate infeasible nodes (resources, security level,
// accelerator, layer affinity, labels); scorers rank the survivors
// (least-allocated, balanced, energy, latency-to-consumer).
//
// Two execution paths produce identical verdicts:
//  - scan: filter + score every node (the reference semantics);
//  - indexed: intersect NodeIndex bitmaps for the structural filters, then
//    run only the residual (capacity/liveness/opaque) filters per candidate.
// The indexed path falls back to the scan when no candidate survives, so
// failures carry the same per-node rejection list either way.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "continuum/node.hpp"
#include "sched/node_index.hpp"
#include "sched/pod.hpp"
#include "util/status.hpp"

namespace myrtus::sched {

/// Which built-in constraint a filter implements. The indexed path uses the
/// kind to decide which filters the candidate bitmaps already guarantee;
/// kOpaque filters always run per candidate.
enum class FilterKind : std::uint8_t {
  kOpaque = 0,
  kNodeReady,       // liveness: mutated externally, always checked live
  kNotCordoned,     // indexed
  kFitsResources,   // capacity: changes per bind, always checked live
  kSecurityLevel,   // indexed
  kAccelerator,     // indexed
  kLayerAffinity,   // indexed
  kNodeSelector,    // indexed
};
inline constexpr std::size_t kNumFilterKinds = 8;

/// A filter rejects a node outright (returns a human-readable reason) or
/// passes it (empty optional).
using FilterFn = std::function<std::optional<std::string>(
    const PodSpec& pod, const NodeState& node)>;
/// A scorer returns [0,1]; higher is better.
using ScoreFn = std::function<double(const PodSpec& pod, const NodeState& node)>;

struct FilterPlugin {
  std::string name;
  FilterKind kind = FilterKind::kOpaque;
  FilterFn fn;
};

struct ScorePlugin {
  std::string name;
  double weight = 1.0;
  ScoreFn fn;
};

/// Built-in plugins.
namespace plugins {
FilterPlugin FitsResources();
FilterPlugin SecurityLevel();
FilterPlugin Accelerator();
FilterPlugin LayerAffinity();
FilterPlugin NodeSelector();
FilterPlugin NotCordoned();
FilterPlugin NodeReady();

ScorePlugin LeastAllocated(double weight = 1.0);
ScorePlugin Balanced(double weight = 1.0);
/// Prefers nodes whose active operating points draw less power per capacity.
ScorePlugin EnergyEfficient(double weight = 1.0);
/// Prefers the layer named in `preferred` (soft affinity).
ScorePlugin PreferLayer(const std::string& preferred, double weight = 1.0);
}  // namespace plugins

struct ScheduleResult {
  std::string node_id;
  double score = 0.0;
  std::vector<std::pair<std::string, std::string>> rejections;  // node, reason
  /// Nodes actually evaluated: fleet size on the scan path, candidate-set
  /// size on the indexed fast path.
  std::uint64_t nodes_considered = 0;
};

struct ScheduleOptions {
  /// Force full-scan semantics on the indexed path: evaluate every node and
  /// report each infeasible one in `rejections` (costs O(fleet)).
  bool explain = false;
};

class Scheduler {
 public:
  /// Default pipeline: all built-in filters, least-allocated + balanced.
  static Scheduler Default();

  void AddFilter(FilterPlugin f) {
    has_kind_[static_cast<std::size_t>(f.kind)] = true;
    filters_.push_back(std::move(f));
  }
  /// Opaque custom filter: always evaluated per candidate on both paths.
  void AddFilter(FilterFn f) {
    AddFilter(FilterPlugin{"custom", FilterKind::kOpaque, std::move(f)});
  }
  void AddScorer(ScorePlugin s) { scorers_.push_back(std::move(s)); }
  void ClearScorers() { scorers_.clear(); }

  /// Picks the best feasible node by scanning `nodes`. RESOURCE_EXHAUSTED
  /// when none fits (the result's rejection list explains why, per node).
  [[nodiscard]] util::StatusOr<ScheduleResult> Schedule(
      const PodSpec& pod, const std::vector<NodeState*>& nodes) const;
  /// Indexed candidate selection over `index`; verdict-identical to the scan
  /// (same winner; on failure, same rejection list via scan fallback). The
  /// success fast path leaves `rejections` empty unless `opts.explain`.
  [[nodiscard]] util::StatusOr<ScheduleResult> Schedule(
      const PodSpec& pod, const NodeIndex& index,
      const ScheduleOptions& opts = {}) const;

 private:
  [[nodiscard]] double ScoreNode(const PodSpec& pod, const NodeState& n) const;
  template <typename GetNode>
  [[nodiscard]] util::StatusOr<ScheduleResult> ScanImpl(
      const PodSpec& pod, std::size_t count, GetNode get,
      const char* path) const;

  std::vector<FilterPlugin> filters_;
  std::vector<ScorePlugin> scorers_;
  bool has_kind_[kNumFilterKinds] = {};
};

}  // namespace myrtus::sched
