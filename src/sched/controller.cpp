#include "sched/controller.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace myrtus::sched {
namespace {

/// Instant child span marking the moment a pod transitions to Running —
/// the leaf of the announce→bid→award→schedule→start causal chain.
void EmitPodStartSpan(const Pod& pod) {
  if (!telemetry::Enabled()) return;
  auto& tracer = telemetry::Global().tracer;
  const telemetry::SpanContext span = tracer.StartSpan("pod.start", "sched");
  tracer.SetAttribute(span, "pod", pod.spec.name);
  tracer.SetAttribute(span, "node", pod.node_id);
  tracer.EndSpan(span);
}

}  // namespace

Cluster::Cluster(sim::Engine& engine, Scheduler scheduler)
    : engine_(engine), scheduler_(std::move(scheduler)) {}

void Cluster::AddNode(continuum::ComputeNode* node,
                      std::map<std::string, std::string> labels) {
  auto state = std::make_unique<NodeState>();
  state->node = node;
  state->labels = std::move(labels);
  nodes_.push_back(std::move(state));
}

NodeState* Cluster::FindNodeState(const std::string& node_id) {
  for (auto& n : nodes_) {
    if (n->node->id() == node_id) return n.get();
  }
  return nullptr;
}

std::vector<NodeState*> Cluster::NodeStates() {
  std::vector<NodeState*> out;
  out.reserve(nodes_.size());
  for (auto& n : nodes_) out.push_back(n.get());
  return out;
}

void Cluster::Cordon(const std::string& node_id, bool cordoned) {
  if (NodeState* n = FindNodeState(node_id)) n->cordoned = cordoned;
}

util::StatusOr<std::string> Cluster::TryBind(Pod& pod) {
  telemetry::ScopedSpan span("sched.bind", "sched");
  span.SetAttribute("pod", pod.spec.name);
  auto result = scheduler_.Schedule(pod.spec, NodeStates());
  if (!result.ok()) return result.status();
  NodeState* target = FindNodeState(result->node_id);
  if (target == nullptr) return util::Status::Internal("scheduler chose unknown node");
  MYRTUS_RETURN_IF_ERROR(target->node->ReserveMemory(pod.spec.mem_request_mb));
  target->cpu_allocated += pod.spec.cpu_request;
  target->mem_allocated_mb += pod.spec.mem_request_mb;
  pod.phase = PodPhase::kRunning;
  pod.node_id = result->node_id;
  pod.bound_at_ns = engine_.Now().ns;
  metrics_.Inc("pods_bound");
  span.SetAttribute("node", pod.node_id);
  EmitPodStartSpan(pod);
  return result->node_id;
}

util::StatusOr<std::string> Cluster::BindPod(const PodSpec& spec) {
  if (pods_.count(spec.name) > 0) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  Pod pod;
  pod.spec = spec;
  auto bound = TryBind(pod);
  pods_[spec.name] = std::move(pod);  // kept (pending) even on failure
  return bound;
}

util::StatusOr<std::string> Cluster::BindPodToNode(const PodSpec& spec,
                                                   const std::string& node_id) {
  if (pods_.count(spec.name) > 0) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  NodeState* target = FindNodeState(node_id);
  if (target == nullptr) return util::Status::NotFound("node " + node_id);
  if (!target->node->up() || target->cordoned) {
    return util::Status::Unavailable(node_id + " not schedulable");
  }
  if (target->CpuFree() < spec.cpu_request ||
      target->mem_capacity_mb() - target->mem_allocated_mb < spec.mem_request_mb) {
    return util::Status::ResourceExhausted(node_id + " cannot fit " + spec.name);
  }
  if (!security::Satisfies(target->node->security_level(), spec.min_security)) {
    return util::Status::PermissionDenied(node_id + " below required security level");
  }
  if (spec.needs_accelerator && !target->HasAccelerator()) {
    return util::Status::FailedPrecondition(node_id + " has no accelerator");
  }
  Pod pod;
  pod.spec = spec;
  MYRTUS_RETURN_IF_ERROR(target->node->ReserveMemory(spec.mem_request_mb));
  target->cpu_allocated += spec.cpu_request;
  target->mem_allocated_mb += spec.mem_request_mb;
  pod.phase = PodPhase::kRunning;
  pod.node_id = node_id;
  pod.bound_at_ns = engine_.Now().ns;
  metrics_.Inc("pods_bound_directed");
  EmitPodStartSpan(pod);
  pods_[spec.name] = std::move(pod);
  return node_id;
}

util::StatusOr<std::string> Cluster::BindPodWithPreemption(const PodSpec& spec) {
  auto direct = BindPod(spec);
  if (direct.ok()) return direct;
  if (direct.status().code() != util::StatusCode::kResourceExhausted) {
    return direct;
  }

  // Find a node where evicting strictly-lower-priority pods frees enough
  // room; prefer the node sacrificing the least total priority.
  NodeState* best_node = nullptr;
  std::vector<std::string> best_victims;
  int best_cost = INT_MAX;
  for (auto& ns : nodes_) {
    if (!ns->node->up() || ns->cordoned) continue;
    if (!security::Satisfies(ns->node->security_level(), spec.min_security)) continue;
    if (spec.needs_accelerator && !ns->HasAccelerator()) continue;
    if (!spec.layer_affinity.empty() &&
        spec.layer_affinity != continuum::LayerName(ns->node->layer())) {
      continue;
    }
    bool selector_ok = true;
    for (const auto& [k, v] : spec.node_selector) {
      const auto it = ns->labels.find(k);
      if (it == ns->labels.end() || it->second != v) {
        selector_ok = false;
        break;
      }
    }
    if (!selector_ok) continue;
    double cpu_needed = spec.cpu_request - ns->CpuFree();
    std::int64_t mem_needed =
        static_cast<std::int64_t>(spec.mem_request_mb) -
        static_cast<std::int64_t>(ns->mem_capacity_mb() - ns->mem_allocated_mb);
    // Victims: lowest priority first.
    std::vector<const Pod*> candidates;
    for (const Pod* p : PodsOnNode(ns->node->id())) {
      if (p->spec.priority < spec.priority) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Pod* a, const Pod* b) {
                return a->spec.priority < b->spec.priority;
              });
    std::vector<std::string> victims;
    int cost = 0;
    for (const Pod* p : candidates) {
      if (cpu_needed <= 0 && mem_needed <= 0) break;
      victims.push_back(p->spec.name);
      cost += p->spec.priority + 1;
      cpu_needed -= p->spec.cpu_request;
      mem_needed -= static_cast<std::int64_t>(p->spec.mem_request_mb);
    }
    // A node needing no evictions would have been found by the direct bind;
    // only eviction-bearing plans are preemption candidates.
    if (victims.empty()) continue;
    if (cpu_needed <= 0 && mem_needed <= 0 && cost < best_cost) {
      best_cost = cost;
      best_node = ns.get();
      best_victims = std::move(victims);
    }
  }
  if (best_node == nullptr) return direct.status();

  for (const std::string& victim : best_victims) {
    Pod& v = pods_.at(victim);
    ReleasePodResources(v);
    v.phase = PodPhase::kEvicted;
    v.node_id.clear();
    ++evictions_;
    metrics_.Inc("pods_evicted");
  }
  Pod& pod = pods_.at(spec.name);
  return TryBind(pod);
}

void Cluster::ReleasePodResources(Pod& pod) {
  if (pod.node_id.empty()) return;
  if (NodeState* n = FindNodeState(pod.node_id)) {
    n->cpu_allocated -= pod.spec.cpu_request;
    n->mem_allocated_mb -= std::min(n->mem_allocated_mb, pod.spec.mem_request_mb);
    n->node->ReleaseMemory(pod.spec.mem_request_mb);
  }
}

util::Status Cluster::DeletePod(const std::string& pod_name) {
  const auto it = pods_.find(pod_name);
  if (it == pods_.end()) return util::Status::NotFound("pod " + pod_name);
  ReleasePodResources(it->second);
  pods_.erase(it);
  return util::Status::Ok();
}

const Pod* Cluster::FindPod(const std::string& pod_name) const {
  const auto it = pods_.find(pod_name);
  return it == pods_.end() ? nullptr : &it->second;
}

std::vector<const Pod*> Cluster::PodsOnNode(const std::string& node_id) const {
  std::vector<const Pod*> out;
  for (const auto& [name, pod] : pods_) {
    if (pod.node_id == node_id && pod.phase == PodPhase::kRunning) {
      out.push_back(&pod);
    }
  }
  return out;
}

std::size_t Cluster::RunningPods() const {
  std::size_t n = 0;
  for (const auto& [name, pod] : pods_) {
    if (pod.phase == PodPhase::kRunning) ++n;
  }
  return n;
}

std::size_t Cluster::PendingPods() const {
  std::size_t n = 0;
  for (const auto& [name, pod] : pods_) {
    if (pod.phase == PodPhase::kPending || pod.phase == PodPhase::kEvicted) ++n;
  }
  return n;
}

std::string Cluster::NextPodName(const std::string& base) {
  return base + "-" + std::to_string(name_counter_++);
}

void Cluster::ApplyDeployment(Deployment deployment) {
  deployments_[deployment.name] = std::move(deployment);
  Reconcile();
}

util::Status Cluster::ScaleDeployment(const std::string& name, int replicas) {
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) {
    return util::Status::NotFound("deployment " + name);
  }
  it->second.replicas = replicas;
  Reconcile();
  return util::Status::Ok();
}

int Cluster::DeploymentReadyReplicas(const std::string& name) const {
  const auto it = deployment_pods_.find(name);
  if (it == deployment_pods_.end()) return 0;
  int ready = 0;
  for (const std::string& pod_name : it->second) {
    const Pod* p = FindPod(pod_name);
    if (p != nullptr && p->phase == PodPhase::kRunning) ++ready;
  }
  return ready;
}

void Cluster::Reconcile() {
  // 1. Evict pods bound to failed nodes.
  for (auto& [name, pod] : pods_) {
    if (pod.phase == PodPhase::kRunning) {
      NodeState* n = FindNodeState(pod.node_id);
      if (n == nullptr || !n->node->up()) {
        ReleasePodResources(pod);
        pod.phase = PodPhase::kEvicted;
        pod.node_id.clear();
        ++evictions_;
        metrics_.Inc("pods_evicted_node_failure");
      }
    }
  }

  // 2. Autoscalers adjust desired replica counts.
  for (auto& [name, dep] : deployments_) {
    if (dep.max_replicas > 0 && dep.load_signal) {
      const double demand = dep.load_signal();
      const double per_replica = std::max(1e-9, dep.pod_template.cpu_request);
      const int desired = static_cast<int>(std::ceil(demand / per_replica));
      dep.replicas = std::clamp(desired, dep.min_replicas, dep.max_replicas);
      metrics_.Set("autoscale_" + name, dep.replicas);
    }
  }

  // 3. Converge each deployment's replica set.
  for (auto& [name, dep] : deployments_) {
    auto& pod_names = deployment_pods_[name];
    // Drop deleted pods from the tracking list.
    std::erase_if(pod_names, [&](const std::string& pn) {
      return pods_.count(pn) == 0;
    });
    // Scale down: remove newest pods first.
    while (static_cast<int>(pod_names.size()) > dep.replicas) {
      // LINT: discard(name filtered to live pods above; a miss only means
      // the pod already terminated)
      (void)DeletePod(pod_names.back());
      pod_names.pop_back();
    }
    // Scale up: create missing replicas.
    while (static_cast<int>(pod_names.size()) < dep.replicas) {
      PodSpec spec = dep.pod_template;
      spec.name = NextPodName(name);
      Pod pod;
      pod.spec = spec;
      pods_[spec.name] = std::move(pod);
      pod_names.push_back(spec.name);
    }
  }

  // 4. Retry all pending/evicted pods.
  for (auto& [name, pod] : pods_) {
    if (pod.phase == PodPhase::kPending || pod.phase == PodPhase::kEvicted) {
      if (TryBind(pod).ok()) {
        ++reschedules_;
      } else {
        pod.phase = PodPhase::kPending;
      }
    }
  }
  metrics_.Set("running_pods", static_cast<double>(RunningPods()));
  metrics_.Set("pending_pods", static_cast<double>(PendingPods()));
}

void Cluster::StartReconcileLoop(sim::SimTime period) {
  StopReconcileLoop();
  reconcile_loop_ = engine_.SchedulePeriodic(period, [this] { Reconcile(); });
}

void Cluster::StopReconcileLoop() {
  engine_.Cancel(reconcile_loop_);
  reconcile_loop_ = {};
}

}  // namespace myrtus::sched
