#include "sched/controller.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace myrtus::sched {
namespace {

/// Instant child span marking the moment a pod transitions to Running —
/// the leaf of the announce→bid→award→schedule→start causal chain.
void EmitPodStartSpan(const std::string& pod_name, const std::string& node_id) {
  if (!telemetry::Enabled()) return;
  auto& tracer = telemetry::Global().tracer;
  const telemetry::SpanContext span = tracer.StartSpan("pod.start", "sched");
  tracer.SetAttribute(span, "pod", pod_name);
  tracer.SetAttribute(span, "node", node_id);
  tracer.EndSpan(span);
}

}  // namespace

Cluster::Cluster(sim::Engine& engine, Scheduler scheduler)
    : engine_(engine), scheduler_(std::move(scheduler)) {
  pods_.set_node_id_resolver(
      [this](std::int32_t slot) -> const std::string& {
        return index_.at(static_cast<std::size_t>(slot)).node->id();
      });
}

void Cluster::AddNode(continuum::ComputeNode* node,
                      std::map<std::string, std::string> labels) {
  index_.Add(node, std::move(labels));
}

NodeState* Cluster::FindNodeState(const std::string& node_id) {
  return index_.Find(node_id);
}

std::vector<NodeState*> Cluster::NodeStates() {
  std::vector<NodeState*> out;
  out.reserve(index_.size());
  for (std::size_t slot = 0; slot < index_.size(); ++slot) {
    out.push_back(&index_.at(slot));
  }
  return out;
}

void Cluster::Cordon(const std::string& node_id, bool cordoned) {
  if (NodeState* n = index_.Find(node_id)) {
    index_.SetCordoned(n->slot(), cordoned);
    // Scheduler-visible state changed without touching the ComputeNode:
    // bump its epoch so event-driven monitors re-observe it.
    n->node->MarkChanged();
  }
}

util::Status Cluster::SetNodeLabel(const std::string& node_id,
                                   const std::string& key,
                                   const std::string& value) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetLabel(n->slot(), key, value);
  return util::Status::Ok();
}

util::Status Cluster::SetReflectedCpuAllocation(const std::string& node_id,
                                                double cpu) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetCpuAllocation(n->slot(), cpu);
  n->node->MarkChanged();
  return util::Status::Ok();
}

util::Status Cluster::SetReflectedMemAllocation(const std::string& node_id,
                                                std::uint64_t mem_mb) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetMemAllocation(n->slot(), mem_mb);
  n->node->MarkChanged();
  return util::Status::Ok();
}

void Cluster::MarkUnbound(PodId id) {
  unbound_.push_back(id);
  ++pending_count_;
}

void Cluster::RosterInsert(std::int32_t slot, PodId id) {
  const auto s = static_cast<std::size_t>(slot);
  if (pods_by_node_.size() <= s) pods_by_node_.resize(s + 1);
  std::vector<PodId>& roster = pods_by_node_[s];
  const std::string& name = pods_.View(id).name();
  const auto pos = std::lower_bound(
      roster.begin(), roster.end(), name, [this](PodId lhs, const std::string& n) {
        return pods_.View(lhs).name() < n;
      });
  roster.insert(pos, id);
}

void Cluster::RosterErase(std::int32_t slot, PodId id) {
  const auto s = static_cast<std::size_t>(slot);
  if (pods_by_node_.size() <= s) return;
  std::vector<PodId>& roster = pods_by_node_[s];
  const auto pos = std::find(roster.begin(), roster.end(), id);
  if (pos != roster.end()) roster.erase(pos);
}

void Cluster::NotifyBound(const std::string& pod_name) {
  for (const PodEvents& listener : pod_listeners_) {
    if (listener.on_bound) listener.on_bound(pod_name);
  }
}

void Cluster::NotifyDeleted(const std::string& pod_name) {
  for (const PodEvents& listener : pod_listeners_) {
    if (listener.on_deleted) listener.on_deleted(pod_name);
  }
}

util::Status Cluster::CommitBind(PodId id, NodeState& target) {
  const PodView pod = pods_.View(id);
  MYRTUS_RETURN_IF_ERROR(target.node->ReserveMemory(pod.spec().mem_request_mb));
  index_.AddAllocation(target.slot(), pod.spec().cpu_request,
                       pod.spec().mem_request_mb);
  pods_.Bind(id, static_cast<std::int32_t>(target.slot()), engine_.Now().ns,
             pod.spec().cpu_request, pod.spec().mem_request_mb);
  if (pending_count_ > 0) --pending_count_;
  RosterInsert(static_cast<std::int32_t>(target.slot()), id);
  ++running_count_;
  EmitPodStartSpan(pod.name(), target.node->id());
  NotifyBound(pod.name());
  return util::Status::Ok();
}

void Cluster::ReleasePodResources(PodId id) {
  const PodView pod = pods_.View(id);
  if (!pod || pod.node_slot() < 0) return;
  const std::int32_t slot = pod.node_slot();
  index_.SubAllocation(static_cast<std::uint32_t>(slot), pod.committed_cpu(),
                       pod.committed_mem_mb());
  index_.at(static_cast<std::size_t>(slot))
      .node->ReleaseMemory(pod.committed_mem_mb());
  RosterErase(slot, id);
  if (pod.phase() == PodPhase::kRunning && running_count_ > 0) {
    --running_count_;
  }
  pods_.ClearBinding(id);
}

util::StatusOr<std::string> Cluster::TryBind(PodId id) {
  const PodView pod = pods_.View(id);
  telemetry::ScopedSpan span("sched.bind", "sched");
  span.SetAttribute("pod", pod.name());
  auto result = schedule_path_ == SchedulePath::kScan
                    ? scheduler_.Schedule(pod.spec(), NodeStates())
                    : scheduler_.Schedule(pod.spec(), index_);
  if (!result.ok()) return result.status();
  NodeState* target = index_.Find(result->node_id);
  if (target == nullptr) {
    return util::Status::Internal("scheduler chose unknown node");
  }
  MYRTUS_RETURN_IF_ERROR(CommitBind(id, *target));
  metrics_.Inc("pods_bound");
  span.SetAttribute("node", result->node_id);
  return result->node_id;
}

util::StatusOr<std::string> Cluster::BindPod(const PodSpec& spec) {
  const PodId id = pods_.Create(spec);
  if (id == kInvalidPodId) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  MarkUnbound(id);        // CommitBind uncounts on success
  return TryBind(id);     // kept (pending) even on failure
}

util::StatusOr<std::string> Cluster::BindPodToNode(const PodSpec& spec,
                                                   const std::string& node_id) {
  if (pods_.FindId(spec.name) != kInvalidPodId) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  NodeState* target = index_.Find(node_id);
  if (target == nullptr) return util::Status::NotFound("node " + node_id);
  if (!target->node->up() || target->cordoned()) {
    return util::Status::Unavailable(node_id + " not schedulable");
  }
  if (target->CpuFree() < spec.cpu_request ||
      target->MemFreeMb() < spec.mem_request_mb) {
    return util::Status::ResourceExhausted(node_id + " cannot fit " + spec.name);
  }
  if (!security::Satisfies(target->node->security_level(), spec.min_security)) {
    return util::Status::PermissionDenied(node_id + " below required security level");
  }
  if (spec.needs_accelerator && !target->HasAccelerator()) {
    return util::Status::FailedPrecondition(node_id + " has no accelerator");
  }
  const PodId id = pods_.Create(spec);
  MarkUnbound(id);
  if (util::Status committed = CommitBind(id, *target); !committed.ok()) {
    // The device ledger refused what the clamped check allowed (external
    // reservation raced us); drop the half-created pod.
    unbound_.pop_back();  // the id we just pushed
    if (pending_count_ > 0) --pending_count_;
    pods_.Erase(id);
    return committed;
  }
  metrics_.Inc("pods_bound_directed");
  return node_id;
}

util::StatusOr<std::string> Cluster::BindPodWithPreemption(const PodSpec& spec) {
  auto direct = BindPod(spec);
  if (direct.ok()) return direct;
  if (direct.status().code() != util::StatusCode::kResourceExhausted) {
    return direct;
  }

  // Find a node where evicting strictly-lower-priority pods frees enough
  // room; prefer the node sacrificing the least total priority. Candidates
  // come from the structural indexes (security/accelerator/layer/selector/
  // cordon); liveness and capacity are checked live.
  CandidateQuery query;
  query.restrict_cordoned = true;
  query.restrict_security = true;
  query.min_security = spec.min_security;
  query.restrict_accelerator = spec.needs_accelerator;
  if (!spec.layer_affinity.empty()) query.layer = &spec.layer_affinity;
  if (!spec.node_selector.empty()) query.selector = &spec.node_selector;

  NodeState* best_node = nullptr;
  std::vector<PodId> best_victims;
  int best_cost = INT_MAX;
  index_.Candidates(query).ForEachSet([&](std::size_t slot) {
    NodeState& ns = index_.at(slot);
    if (!ns.node->up()) return;
    double cpu_needed = spec.cpu_request - ns.CpuFree();
    std::int64_t mem_needed = static_cast<std::int64_t>(spec.mem_request_mb) -
                              static_cast<std::int64_t>(ns.MemFreeMb());
    // Victims: lowest priority first (candidates arrive in name order).
    std::vector<PodView> candidates;
    for (const PodView& p : PodsOnNode(ns.node->id())) {
      if (p.spec().priority < spec.priority) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const PodView& a, const PodView& b) {
                return a.spec().priority < b.spec().priority;
              });
    std::vector<PodId> victims;
    int cost = 0;
    for (const PodView& p : candidates) {
      if (cpu_needed <= 0 && mem_needed <= 0) break;
      victims.push_back(p.id());
      cost += p.spec().priority + 1;
      cpu_needed -= p.spec().cpu_request;
      mem_needed -= static_cast<std::int64_t>(p.spec().mem_request_mb);
    }
    // A node needing no evictions would have been found by the direct bind;
    // only eviction-bearing plans are preemption candidates.
    if (victims.empty()) return;
    if (cpu_needed <= 0 && mem_needed <= 0 && cost < best_cost) {
      best_cost = cost;
      best_node = &ns;
      best_victims = std::move(victims);
    }
  });
  if (best_node == nullptr) return direct.status();

  // Evict, remembering enough to roll each victim back.
  struct EvictedPod {
    PodId id;
    std::int32_t node_slot;
    std::int64_t bound_at_ns;
  };
  std::vector<EvictedPod> evicted;
  evicted.reserve(best_victims.size());
  for (const PodId victim : best_victims) {
    const PodView v = pods_.View(victim);
    evicted.push_back({victim, v.node_slot(), v.bound_at_ns()});
    ReleasePodResources(victim);
    pods_.SetPhase(victim, PodPhase::kEvicted);
    MarkUnbound(victim);
  }
  const PodId id = pods_.FindId(spec.name);
  auto rebind = TryBind(id);
  if (rebind.ok()) {
    evictions_ += evicted.size();
    for (std::size_t i = 0; i < evicted.size(); ++i) {
      metrics_.Inc("pods_evicted");
    }
    return rebind;
  }
  // The preemptor still cannot bind (an opaque filter, or capacity shifted):
  // re-commit every victim onto its original node, newest first, restoring
  // the original bind time. Nothing was gained, so nothing may be lost.
  for (auto rit = evicted.rbegin(); rit != evicted.rend(); ++rit) {
    NodeState& home = index_.at(static_cast<std::size_t>(rit->node_slot));
    if (util::Status restored = CommitBind(rit->id, home); restored.ok()) {
      pods_.SetBoundAtNs(rit->id, rit->bound_at_ns);
      metrics_.Inc("preemption_rollbacks");
    } else {
      metrics_.Inc("preemption_rollback_failures");
    }
  }
  return rebind.status();
}

util::StatusOr<ScheduleResult> Cluster::DryRunSchedule(
    const PodSpec& spec) const {
  return scheduler_.Schedule(spec, index_);
}

util::Status Cluster::DeletePodById(PodId id) {
  const PodView pod = pods_.View(id);
  if (!pod) return util::Status::NotFound("pod");
  const std::string name = pod.name();  // survives the erase, for listeners
  if (pod.node_slot() >= 0) {
    ReleasePodResources(id);
  } else if (pending_count_ > 0) {
    --pending_count_;  // its unbound_ entry goes stale and filters out
  }
  pods_.Erase(id);
  NotifyDeleted(name);
  return util::Status::Ok();
}

util::Status Cluster::DeletePod(const std::string& pod_name) {
  const PodId id = pods_.FindId(pod_name);
  if (id == kInvalidPodId) return util::Status::NotFound("pod " + pod_name);
  return DeletePodById(id);
}

std::vector<PodView> Cluster::PodsOnNode(const std::string& node_id) const {
  std::vector<PodView> out;
  const NodeState* n = index_.Find(node_id);
  if (n == nullptr || pods_by_node_.size() <= n->slot()) return out;
  const std::vector<PodId>& roster = pods_by_node_[n->slot()];
  out.reserve(roster.size());
  for (const PodId id : roster) out.push_back(pods_.View(id));
  return out;
}

std::string Cluster::NextPodName(const std::string& base) {
  return base + "-" + std::to_string(name_counter_++);
}

void Cluster::ApplyDeployment(Deployment deployment) {
  deployments_[deployment.name] = std::move(deployment);
  Reconcile();
}

util::Status Cluster::ScaleDeployment(const std::string& name, int replicas) {
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) {
    return util::Status::NotFound("deployment " + name);
  }
  it->second.replicas = replicas;
  Reconcile();
  return util::Status::Ok();
}

int Cluster::DeploymentReadyReplicas(const std::string& name) const {
  const auto it = deployment_pods_.find(name);
  if (it == deployment_pods_.end()) return 0;
  int ready = 0;
  for (const PodId id : it->second) {
    const PodView p = pods_.View(id);
    if (p && p.phase() == PodPhase::kRunning) ++ready;
  }
  return ready;
}

void Cluster::Reconcile() {
  // 1. Evict pods bound to failed nodes. Only down nodes' rosters are
  //    walked, not the whole pod table.
  for (std::size_t slot = 0; slot < index_.size(); ++slot) {
    NodeState& ns = index_.at(slot);
    if (ns.node->up()) continue;
    if (pods_by_node_.size() <= slot || pods_by_node_[slot].empty()) continue;
    const std::vector<PodId> roster = pods_by_node_[slot];  // release mutates
    for (const PodId id : roster) {
      ReleasePodResources(id);
      pods_.SetPhase(id, PodPhase::kEvicted);
      MarkUnbound(id);
      ++evictions_;
      metrics_.Inc("pods_evicted_node_failure");
    }
  }

  // 2. Autoscalers adjust desired replica counts (O(deployments)).
  for (auto& [name, dep] : deployments_) {
    if (dep.max_replicas > 0 && dep.load_signal) {
      const double demand = dep.load_signal();
      const double per_replica = std::max(1e-9, dep.pod_template.cpu_request);
      const int desired = static_cast<int>(std::ceil(demand / per_replica));
      dep.replicas = std::clamp(desired, dep.min_replicas, dep.max_replicas);
      metrics_.Set("autoscale_" + name, dep.replicas);
    }
  }

  // 3. Converge each deployment's replica set.
  for (auto& [name, dep] : deployments_) {
    auto& pod_ids = deployment_pods_[name];
    // Drop deleted pods from the tracking list (stale generations).
    std::erase_if(pod_ids, [&](PodId id) { return !pods_.Alive(id); });
    // Scale down: remove newest pods first.
    while (static_cast<int>(pod_ids.size()) > dep.replicas) {
      // LINT: discard(ids filtered to live pods above; a miss only means
      // the pod already terminated)
      (void)DeletePodById(pod_ids.back());
      pod_ids.pop_back();
    }
    // Scale up: create missing replicas.
    while (static_cast<int>(pod_ids.size()) < dep.replicas) {
      PodSpec spec = dep.pod_template;
      spec.name = NextPodName(name);
      const PodId id = pods_.Create(std::move(spec));
      MarkUnbound(id);
      pod_ids.push_back(id);
    }
  }

  // 4. Retry the unbound dirty set in pod-name order, matching the
  //    historical full-map walk. The vector tolerates stale ids (pods bound
  //    or deleted since they were pushed) and the rare duplicate (a pod that
  //    bound and was later evicted); both are filtered here. Binds only
  //    touch the allocation ledger, never the structural bitmaps, so the
  //    whole batch is admitted through one cached candidate-set build.
  std::vector<PodId> retry;
  retry.swap(unbound_);
  std::erase_if(retry, [&](PodId id) {
    const PodView v = pods_.View(id);
    return !v || v.node_slot() >= 0;
  });
  std::sort(retry.begin(), retry.end(), [&](PodId a, PodId b) {
    return pods_.View(a).name() < pods_.View(b).name();
  });
  retry.erase(std::unique(retry.begin(), retry.end()), retry.end());
  for (const PodId id : retry) {
    if (TryBind(id).ok()) {
      ++reschedules_;
    } else {
      pods_.SetPhase(id, PodPhase::kPending);
      unbound_.push_back(id);
    }
  }
  metrics_.Set("running_pods", static_cast<double>(RunningPods()));
  metrics_.Set("pending_pods", static_cast<double>(PendingPods()));
}

void Cluster::StartReconcileLoop(sim::SimTime period) {
  StopReconcileLoop();
  reconcile_loop_ = engine_.SchedulePeriodic(period, [this] { Reconcile(); });
}

void Cluster::StopReconcileLoop() {
  engine_.Cancel(reconcile_loop_);
  reconcile_loop_ = {};
}

}  // namespace myrtus::sched
