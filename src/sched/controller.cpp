#include "sched/controller.hpp"

#include <algorithm>
#include <climits>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace myrtus::sched {
namespace {

/// Instant child span marking the moment a pod transitions to Running —
/// the leaf of the announce→bid→award→schedule→start causal chain.
void EmitPodStartSpan(const Pod& pod) {
  if (!telemetry::Enabled()) return;
  auto& tracer = telemetry::Global().tracer;
  const telemetry::SpanContext span = tracer.StartSpan("pod.start", "sched");
  tracer.SetAttribute(span, "pod", pod.spec.name);
  tracer.SetAttribute(span, "node", pod.node_id);
  tracer.EndSpan(span);
}

}  // namespace

Cluster::Cluster(sim::Engine& engine, Scheduler scheduler)
    : engine_(engine), scheduler_(std::move(scheduler)) {}

void Cluster::AddNode(continuum::ComputeNode* node,
                      std::map<std::string, std::string> labels) {
  index_.Add(node, std::move(labels));
}

NodeState* Cluster::FindNodeState(const std::string& node_id) {
  return index_.Find(node_id);
}

std::vector<NodeState*> Cluster::NodeStates() {
  std::vector<NodeState*> out;
  out.reserve(index_.size());
  for (std::size_t slot = 0; slot < index_.size(); ++slot) {
    out.push_back(&index_.at(slot));
  }
  return out;
}

void Cluster::Cordon(const std::string& node_id, bool cordoned) {
  if (NodeState* n = index_.Find(node_id)) {
    index_.SetCordoned(n->slot(), cordoned);
  }
}

util::Status Cluster::SetNodeLabel(const std::string& node_id,
                                   const std::string& key,
                                   const std::string& value) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetLabel(n->slot(), key, value);
  return util::Status::Ok();
}

util::Status Cluster::SetReflectedCpuAllocation(const std::string& node_id,
                                                double cpu) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetCpuAllocation(n->slot(), cpu);
  return util::Status::Ok();
}

util::Status Cluster::SetReflectedMemAllocation(const std::string& node_id,
                                                std::uint64_t mem_mb) {
  NodeState* n = index_.Find(node_id);
  if (n == nullptr) return util::Status::NotFound("node " + node_id);
  index_.SetMemAllocation(n->slot(), mem_mb);
  return util::Status::Ok();
}

util::Status Cluster::CommitBind(Pod& pod, NodeState& target) {
  MYRTUS_RETURN_IF_ERROR(target.node->ReserveMemory(pod.spec.mem_request_mb));
  index_.AddAllocation(target.slot(), pod.spec.cpu_request,
                       pod.spec.mem_request_mb);
  pod.committed_cpu = pod.spec.cpu_request;
  pod.committed_mem_mb = pod.spec.mem_request_mb;
  pod.phase = PodPhase::kRunning;
  pod.node_id = target.node->id();
  pod.bound_at_ns = engine_.Now().ns;
  unbound_.erase(pod.spec.name);
  pods_by_node_[pod.node_id].insert(pod.spec.name);
  ++running_count_;
  EmitPodStartSpan(pod);
  return util::Status::Ok();
}

void Cluster::ReleasePodResources(Pod& pod) {
  if (pod.node_id.empty()) return;
  if (NodeState* n = index_.Find(pod.node_id)) {
    index_.SubAllocation(n->slot(), pod.committed_cpu, pod.committed_mem_mb);
    n->node->ReleaseMemory(pod.committed_mem_mb);
  }
  const auto it = pods_by_node_.find(pod.node_id);
  if (it != pods_by_node_.end()) {
    it->second.erase(pod.spec.name);
    if (it->second.empty()) pods_by_node_.erase(it);
  }
  if (pod.phase == PodPhase::kRunning && running_count_ > 0) {
    --running_count_;
  }
  pod.committed_cpu = 0.0;
  pod.committed_mem_mb = 0;
}

util::StatusOr<std::string> Cluster::TryBind(Pod& pod) {
  telemetry::ScopedSpan span("sched.bind", "sched");
  span.SetAttribute("pod", pod.spec.name);
  auto result = schedule_path_ == SchedulePath::kScan
                    ? scheduler_.Schedule(pod.spec, NodeStates())
                    : scheduler_.Schedule(pod.spec, index_);
  if (!result.ok()) return result.status();
  NodeState* target = index_.Find(result->node_id);
  if (target == nullptr) {
    return util::Status::Internal("scheduler chose unknown node");
  }
  MYRTUS_RETURN_IF_ERROR(CommitBind(pod, *target));
  metrics_.Inc("pods_bound");
  span.SetAttribute("node", pod.node_id);
  return result->node_id;
}

util::StatusOr<std::string> Cluster::BindPod(const PodSpec& spec) {
  if (pods_.count(spec.name) > 0) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  Pod pod;
  pod.spec = spec;
  const auto [it, inserted] = pods_.emplace(spec.name, std::move(pod));
  unbound_.insert(spec.name);        // CommitBind clears on success
  return TryBind(it->second);        // kept (pending) even on failure
}

util::StatusOr<std::string> Cluster::BindPodToNode(const PodSpec& spec,
                                                   const std::string& node_id) {
  if (pods_.count(spec.name) > 0) {
    return util::Status::AlreadyExists("pod " + spec.name);
  }
  NodeState* target = index_.Find(node_id);
  if (target == nullptr) return util::Status::NotFound("node " + node_id);
  if (!target->node->up() || target->cordoned()) {
    return util::Status::Unavailable(node_id + " not schedulable");
  }
  if (target->CpuFree() < spec.cpu_request ||
      target->MemFreeMb() < spec.mem_request_mb) {
    return util::Status::ResourceExhausted(node_id + " cannot fit " + spec.name);
  }
  if (!security::Satisfies(target->node->security_level(), spec.min_security)) {
    return util::Status::PermissionDenied(node_id + " below required security level");
  }
  if (spec.needs_accelerator && !target->HasAccelerator()) {
    return util::Status::FailedPrecondition(node_id + " has no accelerator");
  }
  Pod pod;
  pod.spec = spec;
  const auto [it, inserted] = pods_.emplace(spec.name, std::move(pod));
  unbound_.insert(spec.name);
  if (util::Status committed = CommitBind(it->second, *target);
      !committed.ok()) {
    // The device ledger refused what the clamped check allowed (external
    // reservation raced us); drop the half-created pod.
    unbound_.erase(spec.name);
    pods_.erase(it);
    return committed;
  }
  metrics_.Inc("pods_bound_directed");
  return node_id;
}

util::StatusOr<std::string> Cluster::BindPodWithPreemption(const PodSpec& spec) {
  auto direct = BindPod(spec);
  if (direct.ok()) return direct;
  if (direct.status().code() != util::StatusCode::kResourceExhausted) {
    return direct;
  }

  // Find a node where evicting strictly-lower-priority pods frees enough
  // room; prefer the node sacrificing the least total priority. Candidates
  // come from the structural indexes (security/accelerator/layer/selector/
  // cordon); liveness and capacity are checked live.
  CandidateQuery query;
  query.restrict_cordoned = true;
  query.restrict_security = true;
  query.min_security = spec.min_security;
  query.restrict_accelerator = spec.needs_accelerator;
  if (!spec.layer_affinity.empty()) query.layer = &spec.layer_affinity;
  if (!spec.node_selector.empty()) query.selector = &spec.node_selector;

  NodeState* best_node = nullptr;
  std::vector<std::string> best_victims;
  int best_cost = INT_MAX;
  index_.Candidates(query).ForEachSet([&](std::size_t slot) {
    NodeState& ns = index_.at(slot);
    if (!ns.node->up()) return;
    double cpu_needed = spec.cpu_request - ns.CpuFree();
    std::int64_t mem_needed = static_cast<std::int64_t>(spec.mem_request_mb) -
                              static_cast<std::int64_t>(ns.MemFreeMb());
    // Victims: lowest priority first.
    std::vector<const Pod*> candidates;
    for (const Pod* p : PodsOnNode(ns.node->id())) {
      if (p->spec.priority < spec.priority) candidates.push_back(p);
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Pod* a, const Pod* b) {
                return a->spec.priority < b->spec.priority;
              });
    std::vector<std::string> victims;
    int cost = 0;
    for (const Pod* p : candidates) {
      if (cpu_needed <= 0 && mem_needed <= 0) break;
      victims.push_back(p->spec.name);
      cost += p->spec.priority + 1;
      cpu_needed -= p->spec.cpu_request;
      mem_needed -= static_cast<std::int64_t>(p->spec.mem_request_mb);
    }
    // A node needing no evictions would have been found by the direct bind;
    // only eviction-bearing plans are preemption candidates.
    if (victims.empty()) return;
    if (cpu_needed <= 0 && mem_needed <= 0 && cost < best_cost) {
      best_cost = cost;
      best_node = &ns;
      best_victims = std::move(victims);
    }
  });
  if (best_node == nullptr) return direct.status();

  // Evict, remembering enough to roll each victim back.
  struct EvictedPod {
    std::string name;
    std::string node_id;
    std::int64_t bound_at_ns;
  };
  std::vector<EvictedPod> evicted;
  evicted.reserve(best_victims.size());
  for (const std::string& victim : best_victims) {
    Pod& v = pods_.at(victim);
    evicted.push_back({victim, v.node_id, v.bound_at_ns});
    ReleasePodResources(v);
    v.phase = PodPhase::kEvicted;
    v.node_id.clear();
    unbound_.insert(victim);
  }
  Pod& pod = pods_.at(spec.name);
  auto rebind = TryBind(pod);
  if (rebind.ok()) {
    evictions_ += evicted.size();
    for (std::size_t i = 0; i < evicted.size(); ++i) {
      metrics_.Inc("pods_evicted");
    }
    return rebind;
  }
  // The preemptor still cannot bind (an opaque filter, or capacity shifted):
  // re-commit every victim onto its original node, newest first, restoring
  // the original bind time. Nothing was gained, so nothing may be lost.
  for (auto rit = evicted.rbegin(); rit != evicted.rend(); ++rit) {
    Pod& v = pods_.at(rit->name);
    NodeState* home = index_.Find(rit->node_id);
    util::Status restored = home == nullptr
                                ? util::Status::NotFound(rit->node_id)
                                : CommitBind(v, *home);
    if (restored.ok()) {
      v.bound_at_ns = rit->bound_at_ns;
      metrics_.Inc("preemption_rollbacks");
    } else {
      metrics_.Inc("preemption_rollback_failures");
    }
  }
  return rebind.status();
}

util::StatusOr<ScheduleResult> Cluster::DryRunSchedule(
    const PodSpec& spec) const {
  return scheduler_.Schedule(spec, index_);
}

util::Status Cluster::DeletePod(const std::string& pod_name) {
  const auto it = pods_.find(pod_name);
  if (it == pods_.end()) return util::Status::NotFound("pod " + pod_name);
  ReleasePodResources(it->second);
  unbound_.erase(pod_name);
  pods_.erase(it);
  return util::Status::Ok();
}

const Pod* Cluster::FindPod(const std::string& pod_name) const {
  const auto it = pods_.find(pod_name);
  return it == pods_.end() ? nullptr : &it->second;
}

std::vector<const Pod*> Cluster::PodsOnNode(const std::string& node_id) const {
  std::vector<const Pod*> out;
  const auto it = pods_by_node_.find(node_id);
  if (it == pods_by_node_.end()) return out;
  out.reserve(it->second.size());
  for (const std::string& name : it->second) {
    out.push_back(&pods_.at(name));
  }
  return out;
}

std::string Cluster::NextPodName(const std::string& base) {
  return base + "-" + std::to_string(name_counter_++);
}

void Cluster::ApplyDeployment(Deployment deployment) {
  deployments_[deployment.name] = std::move(deployment);
  Reconcile();
}

util::Status Cluster::ScaleDeployment(const std::string& name, int replicas) {
  const auto it = deployments_.find(name);
  if (it == deployments_.end()) {
    return util::Status::NotFound("deployment " + name);
  }
  it->second.replicas = replicas;
  Reconcile();
  return util::Status::Ok();
}

int Cluster::DeploymentReadyReplicas(const std::string& name) const {
  const auto it = deployment_pods_.find(name);
  if (it == deployment_pods_.end()) return 0;
  int ready = 0;
  for (const std::string& pod_name : it->second) {
    const Pod* p = FindPod(pod_name);
    if (p != nullptr && p->phase == PodPhase::kRunning) ++ready;
  }
  return ready;
}

void Cluster::Reconcile() {
  // 1. Evict pods bound to failed nodes. Only down nodes' rosters are
  //    walked, not the whole pod map.
  for (std::size_t slot = 0; slot < index_.size(); ++slot) {
    NodeState& ns = index_.at(slot);
    if (ns.node->up()) continue;
    const auto it = pods_by_node_.find(ns.node->id());
    if (it == pods_by_node_.end()) continue;
    const std::set<std::string> roster = it->second;  // release mutates it
    for (const std::string& pod_name : roster) {
      Pod& pod = pods_.at(pod_name);
      ReleasePodResources(pod);
      pod.phase = PodPhase::kEvicted;
      pod.node_id.clear();
      unbound_.insert(pod_name);
      ++evictions_;
      metrics_.Inc("pods_evicted_node_failure");
    }
  }

  // 2. Autoscalers adjust desired replica counts (O(deployments)).
  for (auto& [name, dep] : deployments_) {
    if (dep.max_replicas > 0 && dep.load_signal) {
      const double demand = dep.load_signal();
      const double per_replica = std::max(1e-9, dep.pod_template.cpu_request);
      const int desired = static_cast<int>(std::ceil(demand / per_replica));
      dep.replicas = std::clamp(desired, dep.min_replicas, dep.max_replicas);
      metrics_.Set("autoscale_" + name, dep.replicas);
    }
  }

  // 3. Converge each deployment's replica set.
  for (auto& [name, dep] : deployments_) {
    auto& pod_names = deployment_pods_[name];
    // Drop deleted pods from the tracking list.
    std::erase_if(pod_names, [&](const std::string& pn) {
      return pods_.count(pn) == 0;
    });
    // Scale down: remove newest pods first.
    while (static_cast<int>(pod_names.size()) > dep.replicas) {
      // LINT: discard(name filtered to live pods above; a miss only means
      // the pod already terminated)
      (void)DeletePod(pod_names.back());
      pod_names.pop_back();
    }
    // Scale up: create missing replicas.
    while (static_cast<int>(pod_names.size()) < dep.replicas) {
      PodSpec spec = dep.pod_template;
      spec.name = NextPodName(name);
      Pod pod;
      pod.spec = spec;
      pods_[spec.name] = std::move(pod);
      unbound_.insert(spec.name);
      pod_names.push_back(spec.name);
    }
  }

  // 4. Retry the unbound dirty set (pod-name order, matching the historical
  //    full-map walk). Binds only touch the allocation ledger, never the
  //    structural bitmaps, so the whole batch is admitted through one cached
  //    candidate-set build per pod shape.
  const std::vector<std::string> retry(unbound_.begin(), unbound_.end());
  for (const std::string& pod_name : retry) {
    const auto it = pods_.find(pod_name);
    if (it == pods_.end()) continue;
    Pod& pod = it->second;
    if (TryBind(pod).ok()) {
      ++reschedules_;
    } else {
      pod.phase = PodPhase::kPending;
    }
  }
  metrics_.Set("running_pods", static_cast<double>(RunningPods()));
  metrics_.Set("pending_pods", static_cast<double>(PendingPods()));
}

void Cluster::StartReconcileLoop(sim::SimTime period) {
  StopReconcileLoop();
  reconcile_loop_ = engine_.SchedulePeriodic(period, [this] { Reconcile(); });
}

void Cluster::StopReconcileLoop() {
  engine_.Cancel(reconcile_loop_);
  reconcile_loop_ = {};
}

}  // namespace myrtus::sched
