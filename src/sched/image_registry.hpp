// Container Image Registry & Repository (§VI ongoing activity: "Candidate
// solutions should be easily accessible by all layers and expose security
// guarantees (e.g. access controls, image scanning)"). A content-addressed
// store: images are manifests over SHA-256-addressed layers, shared layers
// are deduplicated, pulls are charged only for layers a node does not yet
// cache, and pushes run a scan hook before acceptance.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/status.hpp"

namespace myrtus::sched {

struct ImageLayer {
  std::string digest;  // "sha256:<hex>"
  std::uint64_t size_bytes = 0;
};

struct ImageManifest {
  std::string name;      // "myrtus/pose-estimation"
  std::string tag;       // "v1.2"
  std::vector<ImageLayer> layers;

  [[nodiscard]] std::uint64_t TotalBytes() const;
  [[nodiscard]] std::string Reference() const { return name + ":" + tag; }
};

/// Result of a pull: which bytes actually moved.
struct PullReceipt {
  std::uint64_t bytes_transferred = 0;
  std::uint64_t bytes_deduplicated = 0;
  int layers_fetched = 0;
  int layers_cached = 0;
};

class ImageRegistry {
 public:
  /// Scan hook: returns an error to quarantine a layer (simulated CVE scan).
  using ScanHook = std::function<util::Status(const ImageLayer&,
                                              const util::Bytes& content)>;

  ImageRegistry() = default;
  void set_scan_hook(ScanHook hook) { scan_ = std::move(hook); }

  /// Computes the canonical digest of layer content.
  static std::string DigestOf(const util::Bytes& content);

  /// Pushes an image: layers are content-addressed; identical content is
  /// stored once regardless of image. Fails (and stores nothing new) if any
  /// layer fails the scan or a digest mismatches its content.
  util::Status Push(const std::string& name, const std::string& tag,
                    const std::vector<util::Bytes>& layer_contents);

  [[nodiscard]] util::StatusOr<ImageManifest> Manifest(
      const std::string& reference) const;
  [[nodiscard]] std::vector<std::string> ListImages() const;
  [[nodiscard]] std::size_t unique_layers() const { return blobs_.size(); }
  /// Bytes stored (after dedup) and logical bytes (sum over manifests).
  [[nodiscard]] std::uint64_t StoredBytes() const;
  [[nodiscard]] std::uint64_t LogicalBytes() const;

  /// Pulls an image to a node; the node's cache grows. Only uncached layers
  /// transfer.
  util::StatusOr<PullReceipt> Pull(const std::string& reference,
                                   const std::string& node_id);
  /// Drops a node's cache (node reprovisioned).
  void EvictNodeCache(const std::string& node_id);
  [[nodiscard]] bool NodeHasImage(const std::string& reference,
                                  const std::string& node_id) const;

  /// Deletes a tag; unreferenced layers are garbage-collected. Returns the
  /// bytes reclaimed.
  util::StatusOr<std::uint64_t> DeleteImage(const std::string& reference);

 private:
  std::map<std::string, ImageManifest> manifests_;    // by reference
  std::map<std::string, util::Bytes> blobs_;          // by digest
  std::map<std::string, std::set<std::string>> node_cache_;  // node -> digests
  ScanHook scan_;
};

}  // namespace myrtus::sched
