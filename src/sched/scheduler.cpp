#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace myrtus::sched {
namespace {

// Rejection reason strings, shared by the filter plugins and the indexed
// path's residual checks so both paths report byte-identical reasons.
constexpr const char* kReasonInsufficientCpu = "insufficient cpu";
constexpr const char* kReasonInsufficientMemory = "insufficient memory";
constexpr const char* kReasonSecurity = "security level too low";
constexpr const char* kReasonNoAccelerator = "no accelerator";
constexpr const char* kReasonLayerMismatch = "layer mismatch";
constexpr const char* kReasonCordoned = "cordoned";
constexpr const char* kReasonNodeDown = "node down";

util::Status ExhaustedStatus(
    const PodSpec& pod,
    const std::vector<std::pair<std::string, std::string>>& rejections) {
  std::string detail = "no feasible node for pod " + pod.name;
  for (const auto& [node, reason] : rejections) {
    detail += "; " + node + ": " + reason;
  }
  return util::Status::ResourceExhausted(detail);
}

}  // namespace

std::string_view PodPhaseName(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending: return "pending";
    case PodPhase::kBound: return "bound";
    case PodPhase::kRunning: return "running";
    case PodPhase::kSucceeded: return "succeeded";
    case PodPhase::kFailed: return "failed";
    case PodPhase::kEvicted: return "evicted";
  }
  return "?";
}

util::Json PodSpec::ToJson() const {
  util::Json selector = util::Json::MakeObject();
  for (const auto& [k, v] : node_selector) selector.Set(k, v);
  return util::Json::MakeObject()
      .Set("name", name)
      .Set("cpu_request", cpu_request)
      .Set("mem_request_mb", mem_request_mb)
      .Set("min_security",
           std::string(security::SecurityLevelName(min_security)))
      .Set("needs_accelerator", needs_accelerator)
      .Set("priority", priority)
      .Set("layer_affinity", layer_affinity)
      .Set("node_selector", std::move(selector))
      .Set("expected_load", expected_load);
}

PodSpec PodSpec::FromJson(const util::Json& j) {
  PodSpec s;
  s.name = j.at("name").as_string();
  s.cpu_request = j.at("cpu_request").as_double(0.5);
  s.mem_request_mb = static_cast<std::uint64_t>(j.at("mem_request_mb").as_int(128));
  if (auto lvl = security::ParseSecurityLevel(j.at("min_security").as_string());
      lvl.ok()) {
    s.min_security = *lvl;
  }
  s.needs_accelerator = j.at("needs_accelerator").as_bool();
  s.priority = static_cast<int>(j.at("priority").as_int());
  s.layer_affinity = j.at("layer_affinity").as_string();
  for (const auto& [k, v] : j.at("node_selector").fields()) {
    s.node_selector[k] = v.as_string();
  }
  s.expected_load = j.at("expected_load").as_double();
  return s;
}

namespace plugins {

FilterPlugin FitsResources() {
  return {"fits-resources", FilterKind::kFitsResources,
          [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
            if (n.CpuFree() < pod.cpu_request) {
              return std::string(kReasonInsufficientCpu);
            }
            if (n.MemFreeMb() < pod.mem_request_mb) {
              return std::string(kReasonInsufficientMemory);
            }
            return std::nullopt;
          }};
}

FilterPlugin SecurityLevel() {
  return {"security-level", FilterKind::kSecurityLevel,
          [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
            if (!security::Satisfies(n.node->security_level(), pod.min_security)) {
              return std::string(kReasonSecurity);
            }
            return std::nullopt;
          }};
}

FilterPlugin Accelerator() {
  return {"accelerator", FilterKind::kAccelerator,
          [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
            if (pod.needs_accelerator && !n.HasAccelerator()) {
              return std::string(kReasonNoAccelerator);
            }
            return std::nullopt;
          }};
}

FilterPlugin LayerAffinity() {
  return {"layer-affinity", FilterKind::kLayerAffinity,
          [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
            if (!pod.layer_affinity.empty() &&
                pod.layer_affinity != continuum::LayerName(n.node->layer())) {
              return std::string(kReasonLayerMismatch);
            }
            return std::nullopt;
          }};
}

FilterPlugin NodeSelector() {
  return {"node-selector", FilterKind::kNodeSelector,
          [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
            for (const auto& [k, v] : pod.node_selector) {
              const auto& labels = n.labels();
              const auto it = labels.find(k);
              if (it == labels.end() || it->second != v) {
                return "selector mismatch on " + k;
              }
            }
            return std::nullopt;
          }};
}

FilterPlugin NotCordoned() {
  return {"not-cordoned", FilterKind::kNotCordoned,
          [](const PodSpec&, const NodeState& n) -> std::optional<std::string> {
            if (n.cordoned()) return std::string(kReasonCordoned);
            return std::nullopt;
          }};
}

FilterPlugin NodeReady() {
  return {"node-ready", FilterKind::kNodeReady,
          [](const PodSpec&, const NodeState& n) -> std::optional<std::string> {
            if (!n.node->up()) return std::string(kReasonNodeDown);
            return std::nullopt;
          }};
}

ScorePlugin LeastAllocated(double weight) {
  return {"least-allocated", weight, [](const PodSpec&, const NodeState& n) {
            const double cap = n.cpu_capacity();
            return cap <= 0 ? 0.0 : std::max(0.0, n.CpuFree() / cap);
          }};
}

ScorePlugin Balanced(double weight) {
  return {"balanced", weight, [](const PodSpec& pod, const NodeState& n) {
            const double cpu_frac =
                (n.cpu_allocated() + pod.cpu_request) /
                std::max(1e-9, n.cpu_capacity());
            const double mem_frac =
                static_cast<double>(n.mem_allocated_mb() + pod.mem_request_mb) /
                std::max<double>(1.0, static_cast<double>(n.mem_capacity_mb()));
            return 1.0 - std::fabs(cpu_frac - mem_frac);
          }};
}

ScorePlugin EnergyEfficient(double weight) {
  return {"energy", weight, [](const PodSpec&, const NodeState& n) {
            double power = 0.0;
            for (const continuum::Device& d : n.node->devices()) {
              power += d.active_point().power_active_mw;
            }
            const double cap = n.cpu_capacity();
            if (cap <= 0) return 0.0;
            const double mw_per_unit = power / cap;
            // Map [50, 2000] mW/unit onto (1, 0).
            return std::clamp(1.0 - (mw_per_unit - 50.0) / 1950.0, 0.0, 1.0);
          }};
}

ScorePlugin PreferLayer(const std::string& preferred, double weight) {
  return {"prefer-layer", weight,
          [preferred](const PodSpec&, const NodeState& n) {
            return continuum::LayerName(n.node->layer()) == preferred ? 1.0 : 0.0;
          }};
}

}  // namespace plugins

Scheduler Scheduler::Default() {
  Scheduler s;
  s.AddFilter(plugins::NodeReady());
  s.AddFilter(plugins::NotCordoned());
  s.AddFilter(plugins::FitsResources());
  s.AddFilter(plugins::SecurityLevel());
  s.AddFilter(plugins::Accelerator());
  s.AddFilter(plugins::LayerAffinity());
  s.AddFilter(plugins::NodeSelector());
  s.AddScorer(plugins::LeastAllocated(1.0));
  s.AddScorer(plugins::Balanced(0.5));
  return s;
}

double Scheduler::ScoreNode(const PodSpec& pod, const NodeState& n) const {
  double score = 0.0;
  double total_weight = 0.0;
  for (const ScorePlugin& plugin : scorers_) {
    score += plugin.weight * plugin.fn(pod, n);
    total_weight += plugin.weight;
  }
  return total_weight > 0 ? score / total_weight : score;
}

template <typename GetNode>
util::StatusOr<ScheduleResult> Scheduler::ScanImpl(const PodSpec& pod,
                                                   std::size_t count,
                                                   GetNode get,
                                                   const char* path) const {
  telemetry::ScopedSpan span("sched.schedule", "sched");
  span.SetAttribute("pod", pod.name);
  span.SetAttribute("path", path);
  ScheduleResult result;
  result.nodes_considered = count;
  double best_score = -1.0;
  const NodeState* best = nullptr;

  // Filter + score every node in parallel (plugins only read pod/node state),
  // then fold the verdicts serially in node order. The fold reproduces the
  // sequential semantics exactly: rejections list nodes in input order with
  // the *first* failing filter's reason, and the winner is the first node
  // whose score strictly beats all earlier ones.
  struct NodeVerdict {
    double score = 0.0;
    bool feasible = false;
    std::string rejection;
  };
  const std::vector<NodeVerdict> verdicts =
      util::ParallelMap<NodeVerdict>(count, [&](std::size_t i) {
        const NodeState& n = get(i);
        NodeVerdict v;
        for (const FilterPlugin& filter : filters_) {
          if (auto reason = filter.fn(pod, n)) {
            v.rejection = std::move(*reason);
            return v;
          }
        }
        v.feasible = true;
        v.score = ScoreNode(pod, n);
        return v;
      });
  for (std::size_t i = 0; i < count; ++i) {
    const NodeVerdict& v = verdicts[i];
    if (!v.feasible) {
      result.rejections.emplace_back(get(i).node->id(), v.rejection);
      continue;
    }
    if (v.score > best_score) {
      best_score = v.score;
      best = &get(i);
    }
  }

  if (telemetry::Enabled()) {
    span.SetAttribute("rejections", std::to_string(result.rejections.size()));
    telemetry::Global().metrics.Add(
        "myrtus_sched_attempts_total", 1.0,
        {{"result", best == nullptr ? "exhausted" : "placed"}});
  }
  if (best == nullptr) {
    return ExhaustedStatus(pod, result.rejections);
  }
  result.node_id = best->node->id();
  result.score = best_score;
  span.SetAttribute("node", result.node_id);
  return result;
}

util::StatusOr<ScheduleResult> Scheduler::Schedule(
    const PodSpec& pod, const std::vector<NodeState*>& nodes) const {
  return ScanImpl(
      pod, nodes.size(),
      [&](std::size_t i) -> const NodeState& { return *nodes[i]; }, "scan");
}

util::StatusOr<ScheduleResult> Scheduler::Schedule(
    const PodSpec& pod, const NodeIndex& index,
    const ScheduleOptions& opts) const {
  const auto get = [&](std::size_t i) -> const NodeState& {
    return index.at(i);
  };
  if (opts.explain) {
    // Full per-node rejection list requested: evaluate everything through
    // the reference pipeline.
    return ScanImpl(pod, index.size(), get, "indexed-explain");
  }
  telemetry::ScopedSpan span("sched.schedule", "sched");
  span.SetAttribute("pod", pod.name);
  span.SetAttribute("path", "indexed");

  // Restrict only the dimensions an installed filter would enforce, so a
  // pipeline without (say) the security filter keeps admitting low-security
  // nodes exactly like the scan does.
  CandidateQuery query;
  query.restrict_cordoned =
      has_kind_[static_cast<std::size_t>(FilterKind::kNotCordoned)];
  if (has_kind_[static_cast<std::size_t>(FilterKind::kSecurityLevel)]) {
    query.restrict_security = true;
    query.min_security = pod.min_security;
  }
  query.restrict_accelerator =
      has_kind_[static_cast<std::size_t>(FilterKind::kAccelerator)] &&
      pod.needs_accelerator;
  if (has_kind_[static_cast<std::size_t>(FilterKind::kLayerAffinity)] &&
      !pod.layer_affinity.empty()) {
    query.layer = &pod.layer_affinity;
  }
  if (has_kind_[static_cast<std::size_t>(FilterKind::kNodeSelector)] &&
      !pod.node_selector.empty()) {
    query.selector = &pod.node_selector;
  }

  const Bitmap& candidates = index.Candidates(query);
  const NodeState* best = nullptr;
  double best_score = -1.0;
  std::uint64_t considered = 0;
  candidates.ForEachSet([&](std::size_t slot) {
    const NodeState& n = index.at(slot);
    ++considered;
    // Residual filters, in pipeline order. Dimensions the bitmaps guarantee
    // are skipped; liveness, capacity, and opaque filters run live.
    for (const FilterPlugin& filter : filters_) {
      switch (filter.kind) {
        case FilterKind::kNotCordoned:
        case FilterKind::kSecurityLevel:
        case FilterKind::kAccelerator:
        case FilterKind::kLayerAffinity:
        case FilterKind::kNodeSelector:
          continue;
        case FilterKind::kNodeReady:
          if (!n.node->up()) return;
          continue;
        case FilterKind::kFitsResources:
          if (n.CpuFree() < pod.cpu_request) return;
          if (n.MemFreeMb() < pod.mem_request_mb) return;
          continue;
        case FilterKind::kOpaque:
          if (filter.fn(pod, n)) return;
          continue;
      }
    }
    const double score = ScoreNode(pod, n);
    if (score > best_score) {
      best_score = score;
      best = &n;
    }
  });

  if (best == nullptr) {
    // Verdict parity on failure: the scan fallback produces the identical
    // RESOURCE_EXHAUSTED status with every node's first-failing reason.
    return ScanImpl(pod, index.size(), get, "indexed-fallback");
  }
  if (telemetry::Enabled()) {
    span.SetAttribute("candidates", std::to_string(considered));
    telemetry::Global().metrics.Add("myrtus_sched_attempts_total", 1.0,
                                    {{"result", "placed"}});
  }
  ScheduleResult result;
  result.node_id = best->node->id();
  result.score = best_score;
  result.nodes_considered = considered;
  span.SetAttribute("node", result.node_id);
  return result;
}

}  // namespace myrtus::sched
