#include "sched/scheduler.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"
#include "util/parallel.hpp"

namespace myrtus::sched {

std::string_view PodPhaseName(PodPhase phase) {
  switch (phase) {
    case PodPhase::kPending: return "pending";
    case PodPhase::kBound: return "bound";
    case PodPhase::kRunning: return "running";
    case PodPhase::kSucceeded: return "succeeded";
    case PodPhase::kFailed: return "failed";
    case PodPhase::kEvicted: return "evicted";
  }
  return "?";
}

util::Json PodSpec::ToJson() const {
  util::Json selector = util::Json::MakeObject();
  for (const auto& [k, v] : node_selector) selector.Set(k, v);
  return util::Json::MakeObject()
      .Set("name", name)
      .Set("cpu_request", cpu_request)
      .Set("mem_request_mb", mem_request_mb)
      .Set("min_security",
           std::string(security::SecurityLevelName(min_security)))
      .Set("needs_accelerator", needs_accelerator)
      .Set("priority", priority)
      .Set("layer_affinity", layer_affinity)
      .Set("node_selector", std::move(selector))
      .Set("expected_load", expected_load);
}

PodSpec PodSpec::FromJson(const util::Json& j) {
  PodSpec s;
  s.name = j.at("name").as_string();
  s.cpu_request = j.at("cpu_request").as_double(0.5);
  s.mem_request_mb = static_cast<std::uint64_t>(j.at("mem_request_mb").as_int(128));
  if (auto lvl = security::ParseSecurityLevel(j.at("min_security").as_string());
      lvl.ok()) {
    s.min_security = *lvl;
  }
  s.needs_accelerator = j.at("needs_accelerator").as_bool();
  s.priority = static_cast<int>(j.at("priority").as_int());
  s.layer_affinity = j.at("layer_affinity").as_string();
  for (const auto& [k, v] : j.at("node_selector").fields()) {
    s.node_selector[k] = v.as_string();
  }
  s.expected_load = j.at("expected_load").as_double();
  return s;
}

bool NodeState::HasAccelerator() const {
  for (const continuum::Device& d : node->devices()) {
    if (d.kind() == continuum::DeviceKind::kFpgaAccelerator ||
        d.kind() == continuum::DeviceKind::kRiscvCcu) {
      return true;
    }
  }
  return false;
}

namespace plugins {

FilterFn FitsResources() {
  return [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
    if (n.CpuFree() < pod.cpu_request) return "insufficient cpu";
    if (n.mem_capacity_mb() - n.mem_allocated_mb < pod.mem_request_mb) {
      return "insufficient memory";
    }
    return std::nullopt;
  };
}

FilterFn SecurityLevel() {
  return [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
    if (!security::Satisfies(n.node->security_level(), pod.min_security)) {
      return "security level too low";
    }
    return std::nullopt;
  };
}

FilterFn Accelerator() {
  return [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
    if (pod.needs_accelerator && !n.HasAccelerator()) {
      return "no accelerator";
    }
    return std::nullopt;
  };
}

FilterFn LayerAffinity() {
  return [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
    if (!pod.layer_affinity.empty() &&
        pod.layer_affinity != continuum::LayerName(n.node->layer())) {
      return "layer mismatch";
    }
    return std::nullopt;
  };
}

FilterFn NodeSelector() {
  return [](const PodSpec& pod, const NodeState& n) -> std::optional<std::string> {
    for (const auto& [k, v] : pod.node_selector) {
      const auto it = n.labels.find(k);
      if (it == n.labels.end() || it->second != v) {
        return "selector mismatch on " + k;
      }
    }
    return std::nullopt;
  };
}

FilterFn NotCordoned() {
  return [](const PodSpec&, const NodeState& n) -> std::optional<std::string> {
    if (n.cordoned) return "cordoned";
    return std::nullopt;
  };
}

FilterFn NodeReady() {
  return [](const PodSpec&, const NodeState& n) -> std::optional<std::string> {
    if (!n.node->up()) return "node down";
    return std::nullopt;
  };
}

ScorePlugin LeastAllocated(double weight) {
  return {"least-allocated", weight, [](const PodSpec&, const NodeState& n) {
            const double cap = n.cpu_capacity();
            return cap <= 0 ? 0.0 : std::max(0.0, n.CpuFree() / cap);
          }};
}

ScorePlugin Balanced(double weight) {
  return {"balanced", weight, [](const PodSpec& pod, const NodeState& n) {
            const double cpu_frac =
                (n.cpu_allocated + pod.cpu_request) /
                std::max(1e-9, n.cpu_capacity());
            const double mem_frac =
                static_cast<double>(n.mem_allocated_mb + pod.mem_request_mb) /
                std::max<double>(1.0, static_cast<double>(n.mem_capacity_mb()));
            return 1.0 - std::fabs(cpu_frac - mem_frac);
          }};
}

ScorePlugin EnergyEfficient(double weight) {
  return {"energy", weight, [](const PodSpec&, const NodeState& n) {
            double power = 0.0;
            for (const continuum::Device& d : n.node->devices()) {
              power += d.active_point().power_active_mw;
            }
            const double cap = n.cpu_capacity();
            if (cap <= 0) return 0.0;
            const double mw_per_unit = power / cap;
            // Map [50, 2000] mW/unit onto (1, 0).
            return std::clamp(1.0 - (mw_per_unit - 50.0) / 1950.0, 0.0, 1.0);
          }};
}

ScorePlugin PreferLayer(const std::string& preferred, double weight) {
  return {"prefer-layer", weight,
          [preferred](const PodSpec&, const NodeState& n) {
            return continuum::LayerName(n.node->layer()) == preferred ? 1.0 : 0.0;
          }};
}

}  // namespace plugins

Scheduler Scheduler::Default() {
  Scheduler s;
  s.AddFilter(plugins::NodeReady());
  s.AddFilter(plugins::NotCordoned());
  s.AddFilter(plugins::FitsResources());
  s.AddFilter(plugins::SecurityLevel());
  s.AddFilter(plugins::Accelerator());
  s.AddFilter(plugins::LayerAffinity());
  s.AddFilter(plugins::NodeSelector());
  s.AddScorer(plugins::LeastAllocated(1.0));
  s.AddScorer(plugins::Balanced(0.5));
  return s;
}

util::StatusOr<ScheduleResult> Scheduler::Schedule(
    const PodSpec& pod, const std::vector<NodeState*>& nodes) const {
  telemetry::ScopedSpan span("sched.schedule", "sched");
  span.SetAttribute("pod", pod.name);
  ScheduleResult result;
  double best_score = -1.0;
  const NodeState* best = nullptr;

  // Filter + score every node in parallel (plugins only read pod/node state),
  // then fold the verdicts serially in node order. The fold reproduces the
  // sequential semantics exactly: rejections list nodes in input order with
  // the *first* failing filter's reason, and the winner is the first node
  // whose score strictly beats all earlier ones.
  struct NodeVerdict {
    double score = 0.0;
    bool feasible = false;
    std::string rejection;
  };
  const std::vector<NodeVerdict> verdicts =
      util::ParallelMap<NodeVerdict>(nodes.size(), [&](std::size_t i) {
        const NodeState& n = *nodes[i];
        NodeVerdict v;
        for (const FilterFn& filter : filters_) {
          if (auto reason = filter(pod, n)) {
            v.rejection = std::move(*reason);
            return v;
          }
        }
        v.feasible = true;
        double score = 0.0;
        double total_weight = 0.0;
        for (const ScorePlugin& plugin : scorers_) {
          score += plugin.weight * plugin.fn(pod, n);
          total_weight += plugin.weight;
        }
        v.score = total_weight > 0 ? score / total_weight : score;
        return v;
      });
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodeVerdict& v = verdicts[i];
    if (!v.feasible) {
      result.rejections.emplace_back(nodes[i]->node->id(), v.rejection);
      continue;
    }
    if (v.score > best_score) {
      best_score = v.score;
      best = nodes[i];
    }
  }

  if (telemetry::Enabled()) {
    span.SetAttribute("rejections", std::to_string(result.rejections.size()));
    telemetry::Global().metrics.Add(
        "myrtus_sched_attempts_total", 1.0,
        {{"result", best == nullptr ? "exhausted" : "placed"}});
  }
  if (best == nullptr) {
    std::string detail = "no feasible node for pod " + pod.name;
    for (const auto& [node, reason] : result.rejections) {
      detail += "; " + node + ": " + reason;
    }
    return util::Status::ResourceExhausted(detail);
  }
  result.node_id = best->node->id();
  result.score = best_score;
  span.SetAttribute("node", result.node_id);
  return result;
}

}  // namespace myrtus::sched
